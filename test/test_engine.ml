(* The parallel batch engine: deterministic merge, per-job budgets and
   failure isolation, and the redesigned result-typed solver API it
   feeds (Config round-trips, structured unsat reasons, shims). *)

module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Budget = Automata.Budget
module Solver = Dprle.Solver

let test name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Workloads                                                          *)

let fig1_source =
  {| let filter = /[\d]+$/;
     let prefix = "nid_";
     let unsafe = /'/;
     v1 <= filter;
     prefix . v1 <= unsafe; |}

let fixed_source =
  {| let filter = /^[\d]+$/;
     let prefix = "nid_";
     let unsafe = /'/;
     v1 <= filter;
     prefix . v1 <= unsafe; |}

let bad_source = {| v1 <= nope; |}

(* Parse + solve + render, the way `dprle batch` jobs do: everything a
   job prints is derived from values, so rendering is reproducible no
   matter which worker ran it. *)
let solve_and_render source =
  match Dprle.Sysparse.parse source with
  | Error e -> Fmt.str "parse error: %a" Dprle.Sysparse.pp_error e
  | Ok system -> (
      match Solver.run Solver.Config.default system with
      | Ok (Solver.Sat sols) -> Fmt.str "sat (%d)" (List.length sols)
      | Ok (Solver.Unsat { reason; _ }) ->
          Fmt.str "unsat — %s" (Solver.unsat_message reason)
      | Error e -> Fmt.str "error: %s" (Solver.Error.to_string e))

(* Θ(q²) product states when intersecting a{0,q} with (aa){0,q}. *)
let heavy_product q =
  let m1 = Ops.repeat (Nfa.of_word "a") ~min_count:0 ~max_count:(Some q) in
  let m2 = Ops.repeat (Nfa.of_word "aa") ~min_count:0 ~max_count:(Some q) in
  Nfa.num_states (Ops.intersect m1 m2).machine

let render r =
  Fmt.str "%d: %a" r.Engine.index (Engine.pp_outcome Fmt.string) r.Engine.outcome

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)

let engine_tests =
  [
    test "determinism: jobs=1 and jobs=4 render identically" (fun () ->
        let work =
          List.concat
            (List.init 3 (fun _ -> [ fig1_source; fixed_source; bad_source ]))
        in
        let run jobs =
          let results, stats =
            Engine.map ~jobs ~f:(fun _ src -> solve_and_render src) work
          in
          check_int "pool size" (min jobs (List.length work)) stats.Engine.workers;
          List.map render results
        in
        Alcotest.(check (list string)) "reports" (run 1) (run 4));
    test "results come back in submission order" (fun () ->
        let results, stats =
          Engine.map ~jobs:4 ~f:(fun _ n -> n * n) [ 3; 1; 4; 1; 5; 9; 2; 6 ]
        in
        check_int "jobs" 8 stats.Engine.jobs;
        List.iteri
          (fun i (r : _ Engine.job_result) -> check_int "index" i r.index)
          results;
        Alcotest.(check (list int))
          "squares in submission order"
          [ 9; 1; 16; 1; 25; 81; 4; 36 ]
          (List.map
             (fun r ->
               match r.Engine.outcome with
               | Engine.Done v -> v
               | _ -> Alcotest.fail "expected Done")
             results));
    test "a raising job fails alone" (fun () ->
        let results, _ =
          Engine.map ~jobs:2
            ~f:(fun _ n -> if n = 1 then failwith "boom" else n)
            [ 0; 1; 2 ]
        in
        let contains_boom msg =
          let n = String.length msg in
          let rec go i = i + 4 <= n && (String.sub msg i 4 = "boom" || go (i + 1)) in
          go 0
        in
        match List.map (fun r -> r.Engine.outcome) results with
        | [ Engine.Done 0; Engine.Failed f; Engine.Done 2 ] ->
            check_bool "message kept" true (contains_boom f.Engine.message)
        | _ -> Alcotest.fail "expected Done/Failed/Done");
    test "one over-budget job degrades without sinking the batch" (fun () ->
        let results, _ =
          Engine.map ~jobs:2
            ~budget:(Budget.make ~max_states:200 ())
            ~f:(fun _ q -> heavy_product q)
            [ 2; 60; 3 ]
        in
        match List.map (fun r -> r.Engine.outcome) results with
        | [ Engine.Done _; Engine.Budget_exceeded; Engine.Done _ ] -> ()
        | other ->
            Alcotest.failf "unexpected outcomes: %a"
              Fmt.(list ~sep:comma (Engine.pp_outcome int))
              other);
    test "wall-clock budget times a spinning job out" (fun () ->
        let spin _ () =
          (* [Budget.tick] is the solver's BFS-loop hook; a budget of
             10 ms must stop the loop long before 10^9 iterations *)
          let i = ref 0 in
          while !i < 1_000_000_000 do
            incr i;
            Budget.tick ()
          done
        in
        let results, _ =
          Engine.map ~jobs:1 ~budget:(Budget.make ~wall_ms:10 ()) ~f:spin [ () ]
        in
        match (List.hd results).Engine.outcome with
        | Engine.Timeout -> ()
        | _ -> Alcotest.fail "expected Timeout");
    test "jobs=1 runs inline: no worker spans" (fun () ->
        let (), root =
          Telemetry.Span.collect ~name:"t" (fun () ->
              let _, stats = Engine.map ~jobs:1 ~f:(fun _ n -> n) [ 1; 2 ] in
              check_bool "no lanes" true (stats.Engine.worker_spans = []))
        in
        ignore root);
    test "parallel workers hand back span lanes while tracing" (fun () ->
        let (), _root =
          Telemetry.Span.collect ~name:"t" (fun () ->
              let _, stats =
                Engine.map ~jobs:2 ~name:"lane" ~f:(fun _ n -> n) [ 1; 2; 3 ]
              in
              check_int "one lane per worker" 2
                (List.length stats.Engine.worker_spans);
              List.iteri
                (fun i (label, span) ->
                  check_string "label" (Fmt.str "worker-%d" i) label;
                  check_string "span name"
                    (Fmt.str "lane-worker-%d" i)
                    (Telemetry.Span.name span))
                stats.Engine.worker_spans)
        in
        ());
    test "worker metrics are absorbed into the caller's registry" (fun () ->
        let c = Telemetry.Metrics.Counter.make "test.engine.jobs_ran" in
        let before = Telemetry.Metrics.Counter.value c in
        let _, _ =
          Engine.map ~jobs:2
            ~f:(fun _ _ -> Telemetry.Metrics.Counter.incr c 1)
            [ (); (); (); () ]
        in
        check_int "all four increments visible after the joins" (before + 4)
          (Telemetry.Metrics.Counter.value c));
    test "DLS isolation: timer and ledger deltas absorbed exactly once"
      (fun () ->
        (* Each job interns a word unique to it twice — one miss, one
           hit — inside one timed region, so the expected deltas are
           exact regardless of which worker ran which job. The diff
           must be identical for an inline run (jobs=1, main-domain
           DLS) and a parallel run (jobs=4, per-worker DLS registries
           merged by the engine): each worker's timers and ledger
           counters absorbed exactly once, none lost, none doubled. *)
        let t_iso = Telemetry.Metrics.Timer.make "test.engine.iso" in
        let module Snapshot = Telemetry.Metrics.Snapshot in
        let timer_count diff ?labels name =
          match Snapshot.timer_stat diff ?labels name with
          | Some (s : Snapshot.timer_stat) -> s.count
          | None -> 0
        in
        let arm jobs =
          Automata.Store.clear ();
          let before = Snapshot.of_default () in
          let work = List.init 8 (fun i -> Fmt.str "engiso-%d-%d" jobs i) in
          let _, _ =
            Engine.map ~jobs
              ~f:(fun _ word ->
                Telemetry.Metrics.Timer.time t_iso (fun () ->
                    ignore (Automata.Store.intern (Nfa.of_word word));
                    ignore (Automata.Store.intern (Nfa.of_word word))))
              work
          in
          let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
          ( timer_count diff "test.engine.iso",
            Snapshot.counter_value diff "store.intern.miss",
            Snapshot.counter_value diff "store.intern.hit",
            timer_count diff ~labels:[ ("op", "intern") ] "store.ledger.key" )
        in
        let serial = arm 1 in
        let parallel = arm 4 in
        check_bool "identical deltas for jobs=1 and jobs=4" true
          (serial = parallel);
        let timers, misses, hits, keyed = serial in
        check_int "one timed region per job" 8 timers;
        check_int "one intern miss per job" 8 misses;
        check_int "one intern hit per job" 8 hits;
        check_int "two key computations per job" 16 keyed);
  ]

(* ------------------------------------------------------------------ *)
(* Persistent pool                                                    *)

let pool_tests =
  [
    test "a reused pool keeps worker stores warm across batches" (fun () ->
        (* one worker, so scheduling can't blur the ledger: batch 1
           pays the word's single intern miss; batch 2 on the same
           pool must be all hits — the worker domain (and its DLS
           store) survived between batches *)
        let module Snapshot = Telemetry.Metrics.Snapshot in
        Automata.Store.clear ();
        Engine.Pool.with_pool ~size:1 @@ fun pool ->
        let work = List.init 8 (fun i -> i) in
        let job _ _ = ignore (Automata.Store.intern (Nfa.of_word "pool-warm")) in
        let _ = Engine.Pool.map pool ~f:job work in
        let before = Snapshot.of_default () in
        let _ = Engine.Pool.map pool ~f:job work in
        let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
        check_int "no misses in the second batch" 0
          (Snapshot.counter_value diff "store.intern.miss");
        check_int "every job hit the warm store" 8
          (Snapshot.counter_value diff "store.intern.hit"));
    test "pool shutdown is idempotent and map then refuses" (fun () ->
        let pool = Engine.Pool.create ~size:2 () in
        check_bool "alive" true (Engine.Pool.alive pool);
        let results, _ = Engine.Pool.map pool ~f:(fun _ n -> n + 1) [ 1; 2; 3 ] in
        check_int "batch ran" 3 (List.length results);
        Engine.Pool.shutdown pool;
        check_bool "dead" false (Engine.Pool.alive pool);
        Engine.Pool.shutdown pool;
        (* second shutdown is a no-op *)
        check_bool "still dead" false (Engine.Pool.alive pool);
        match Engine.Pool.map pool ~f:(fun _ n -> n) [ 1 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "map on a shut-down pool must raise");
    test "determinism on the pool path: size=1 and size=4 render identically"
      (fun () ->
        let work =
          List.concat
            (List.init 3 (fun _ -> [ fig1_source; fixed_source; bad_source ]))
        in
        let run size =
          Engine.Pool.with_pool ~size @@ fun pool ->
          (* two batches per pool: reuse must not leak state into the
             rendered reports either *)
          let _ =
            Engine.Pool.map pool ~f:(fun _ src -> solve_and_render src) work
          in
          let results, stats =
            Engine.Pool.map pool ~f:(fun _ src -> solve_and_render src) work
          in
          check_int "pool size" (min size (List.length work))
            stats.Engine.workers;
          List.map render results
        in
        Alcotest.(check (list string)) "reports" (run 1) (run 4));
    test "pool map on an empty batch is a no-op" (fun () ->
        Engine.Pool.with_pool ~size:2 @@ fun pool ->
        let results, stats = Engine.Pool.map pool ~f:(fun _ n -> n) [] in
        check_int "no results" 0 (List.length results);
        check_int "no jobs" 0 stats.Engine.jobs);
  ]

(* ------------------------------------------------------------------ *)
(* Budgets at the solver boundary                                     *)

let budget_tests =
  [
    test "state budget stops an adversarial solve structurally" (fun () ->
        Automata.Store.clear ();
        let system = Dprle.Sysparse.parse_exn fig1_source in
        let config =
          Solver.Config.make ~budget:(Budget.make ~max_states:3 ()) ()
        in
        match Solver.run config system with
        | Error (Solver.Error.Budget_exceeded Budget.Out_of_states) -> ()
        | Error (Solver.Error.Budget_exceeded Budget.Timeout) ->
            Alcotest.fail "expected Out_of_states, got Timeout"
        | Ok _ -> Alcotest.fail "3 states cannot decide fig1");
    test "an unlimited budget never trips" (fun () ->
        let system = Dprle.Sysparse.parse_exn fig1_source in
        match Solver.run Solver.Config.default system with
        | Ok (Solver.Sat _) -> ()
        | Ok (Solver.Unsat r) -> Alcotest.failf "unsat: %s" (Solver.unsat_message r.Solver.reason)
        | Error e -> Alcotest.failf "budget: %s" (Solver.Error.to_string e));
    test "report boundary returns the same structured error" (fun () ->
        Automata.Store.clear ();
        let g =
          Dprle.Depgraph.of_system (Dprle.Sysparse.parse_exn fig1_source)
        in
        let config =
          Solver.Config.make ~budget:(Budget.make ~max_states:3 ()) ()
        in
        match Dprle.Report.solve_with_report ~config g with
        | Error (Solver.Error.Budget_exceeded Budget.Out_of_states) -> ()
        | Error _ -> Alcotest.fail "wrong stop"
        | Ok _ -> Alcotest.fail "expected budget error");
    test "budgets nest: the inner one shadows" (fun () ->
        let hit =
          Budget.run (Budget.make ~max_states:1_000_000 ()) (fun () ->
              Budget.run (Budget.make ~max_states:10 ()) (fun () ->
                  heavy_product 40))
        in
        (match hit with
        | Ok (Error Budget.Out_of_states) -> ()
        | Error _ -> Alcotest.fail "outer budget must not catch the inner trip"
        | _ -> Alcotest.fail "inner budget should trip");
        (* after the inner scope, the outer (roomy) budget is back *)
        match Budget.run (Budget.make ~max_states:1_000_000 ()) (fun () ->
            heavy_product 5)
        with
        | Ok n -> check_bool "product built" true (n > 0)
        | Error _ -> Alcotest.fail "outer budget must not trip");
  ]

(* ------------------------------------------------------------------ *)
(* Config / outcome API                                               *)

let api_tests =
  [
    test "Config.make () round-trips to default" (fun () ->
        check_bool "default" true (Solver.Config.make () = Solver.Config.default));
    test "Config.make keeps every field" (fun () ->
        let b = Budget.make ~wall_ms:50 ~max_states:77 () in
        let c =
          Solver.Config.make ~max_solutions:9 ~combination_limit:33 ~budget:b ()
        in
        check_int "max_solutions" 9 c.Solver.Config.max_solutions;
        check_int "combination_limit" 33 c.Solver.Config.combination_limit;
        check_bool "budget" true (c.Solver.Config.budget = b));
    test "unsat_message renders the legacy strings" (fun () ->
        List.iter
          (fun (reason, expected) ->
            check_string "message" expected (Solver.unsat_message reason))
          [
            ( Solver.Const_expr_violation,
              "constant expression violates its subset constraint" );
            (Solver.Const_violation "c", "constant c violates a subset constraint");
            ( Solver.No_cut 3,
              "concatenation 3 admits no ε-cut: its language is empty" );
            ( Solver.All_combinations_empty,
              "every ε-cut combination of a CI-group forces an empty language" );
            ( Solver.Empty_variable "v",
              "variable v is constrained to the empty language" );
          ]);
    test "structured unsat reason is machine-matchable" (fun () ->
        let system = Dprle.Sysparse.parse_exn fixed_source in
        match Solver.run Solver.Config.default system with
        (* the analyzer refutes this system statically (empty bound on
           v1) and names a minimal core; with the analyzer off the
           solver proper reaches the same verdict through ε-cut
           enumeration, with no core *)
        | Ok (Solver.Unsat { Solver.reason = Solver.Empty_variable "v1"; core }) ->
            Alcotest.(check bool) "analyzer names a core" true (core <> [])
        | Ok (Solver.Unsat r) ->
            Alcotest.failf "wrong reason: %s" (Solver.unsat_message r.Solver.reason)
        | _ -> Alcotest.fail "expected unsat");
    test "analyzer-off unsat reason has no core" (fun () ->
        let system = Dprle.Sysparse.parse_exn fixed_source in
        let cfg = { Solver.Config.default with Solver.Config.analyze = false } in
        match Solver.run cfg system with
        | Ok (Solver.Unsat { Solver.reason = Solver.All_combinations_empty; core }) ->
            Alcotest.(check (list pass)) "no core" [] core
        | Ok (Solver.Unsat r) ->
            Alcotest.failf "wrong reason: %s" (Solver.unsat_message r.Solver.reason)
        | _ -> Alcotest.fail "expected unsat");
    test "run and run_graph agree" (fun () ->
        let system = Dprle.Sysparse.parse_exn fig1_source in
        let g = Dprle.Depgraph.of_system system in
        let cfg = Solver.Config.make ~max_solutions:4 () in
        let witnesses = function
          | Ok (Solver.Sat sols) -> List.map Dprle.Assignment.witness sols
          | _ -> []
        in
        check_bool "same verdict shape" true
          (witnesses (Solver.run_graph cfg g) = witnesses (Solver.run cfg system));
        match Solver.run cfg system with
        | Ok (Solver.Sat _) -> ()
        | _ -> Alcotest.fail "fig1 must stay sat");
    test "symexec verdict carries budget status and slot languages" (fun () ->
        let program =
          Webapp.Lang_parser.parse_exn
            {|$newsid = input("posted_newsid");
              if (!preg_match(/[\d]+$/, $newsid)) { exit; }
              $newsid = "nid_" . $newsid;
              query("SELECT * FROM news WHERE newsid=" . $newsid);|}
        in
        match
          (Webapp.Symexec.analyze ~attack:Webapp.Attack.contains_quote program)
            .Webapp.Symexec.candidates
        with
        | [ q ] -> (
            let v = Webapp.Symexec.solve q in
            check_bool "within budget" true
              (v.Webapp.Symexec.budget = Webapp.Symexec.Within_budget);
            (match v.Webapp.Symexec.assignment with
            | Some _ -> ()
            | None -> Alcotest.fail "expected exploit");
            match v.Webapp.Symexec.slot_languages with
            | [ (var, lang) ] ->
                check_bool "slot var" true (String.length var > 0);
                check_bool "slot language nonempty" false
                  (Nfa.is_empty_lang lang)
            | _ -> Alcotest.fail "expected one slot language")
        | _ -> Alcotest.fail "expected one candidate");
    test "symexec reports the budget stop instead of claiming safe" (fun () ->
        Automata.Store.clear ();
        let program =
          Webapp.Lang_parser.parse_exn
            {|$newsid = input("posted_newsid");
              if (!preg_match(/[\d]+$/, $newsid)) { exit; }
              $newsid = "nid_" . $newsid;
              query("SELECT * FROM news WHERE newsid=" . $newsid);|}
        in
        match
          (Webapp.Symexec.analyze ~attack:Webapp.Attack.contains_quote program)
            .Webapp.Symexec.candidates
        with
        | [ q ] -> (
            let config =
              Solver.Config.make ~budget:(Budget.make ~max_states:3 ()) ()
            in
            let v = Webapp.Symexec.solve ~config q in
            check_bool "no assignment claimed" true
              (v.Webapp.Symexec.assignment = None);
            match v.Webapp.Symexec.budget with
            | Webapp.Symexec.Budget_exceeded _ -> ()
            | Webapp.Symexec.Within_budget ->
                Alcotest.fail "expected budget-exceeded status")
        | _ -> Alcotest.fail "expected one candidate");
  ]

let suite =
  [
    ("engine:map", engine_tests);
    ("engine:pool", pool_tests);
    ("engine:budget", budget_tests);
    ("engine:api", api_tests);
  ]
