(* Tests for the §3.1.2-style extensions: length restrictions,
   case-mapped input reads (regular preimages), and the Relabel
   module underneath. *)

open Helpers
module Nfa = Automata.Nfa
module Relabel = Automata.Relabel
module Lang = Automata.Lang
module Ast = Webapp.Ast
module Lang_parser = Webapp.Lang_parser
module Eval = Webapp.Eval
module Symexec = Webapp.Symexec
module Attack = Webapp.Attack

let re = Dprle.System.const_of_regex

let relabel_tests =
  [
    test "preimage of lowercase language" (fun () ->
        let m = Relabel.preimage Char.lowercase_ascii (re "ab") in
        List.iter
          (fun (w, expect) -> check_bool w expect (Nfa.accepts m w))
          [ ("ab", true); ("AB", true); ("aB", true); ("Ab", true);
            ("ba", false); ("abc", false) ]);
    test "image of a language" (fun () ->
        let m = Relabel.image Char.uppercase_ascii (re "a(b|c)") in
        List.iter
          (fun (w, expect) -> check_bool w expect (Nfa.accepts m w))
          [ ("AB", true); ("AC", true); ("ab", false); ("Ab", false) ]);
    test "preimage through a class" (fun () ->
        (* lower(w) ∈ [a-c]+  ⇔  w ∈ [a-cA-C]+ *)
        let m = Relabel.preimage Char.lowercase_ascii (re "[a-c]+") in
        check_bool "mixed" true (Nfa.accepts m "aBC");
        check_bool "out of class" false (Nfa.accepts m "aD"));
    test "identity relabel preserves language" (fun () ->
        let m = re "x(yz)*" in
        check_bool "equal" true (Lang.equal m (Relabel.preimage Fun.id m)));
  ]

let relabel_props =
  [
    qtest ~count:80 "preimage is the inverse-image semantics"
      QCheck2.Gen.(
        let* m = Helpers.nfa_gen in
        let* w = Helpers.word_gen in
        return (m, w))
      (fun (m, w) ->
        Nfa.accepts (Relabel.preimage Char.lowercase_ascii m) w
        = Nfa.accepts m (String.lowercase_ascii w));
    qtest ~count:80 "image contains the map of every sample"
      Helpers.nfa_gen
      (fun m ->
        let img = Relabel.image Char.uppercase_ascii m in
        List.for_all
          (fun w -> Nfa.accepts img (String.uppercase_ascii w))
          (Nfa.sample_words m ~max_len:5 ~max_count:8));
  ]

(* ------------------------------------------------------------------ *)

let parse = Lang_parser.parse_exn

let strlen_tests =
  [
    test "strlen parses and evaluates" (fun () ->
        let p =
          parse
            {|$x = input("x");
              if (!(strlen($x) <= 3)) { exit; }
              query($x);|}
        in
        check_bool "short passes" false (Eval.run p ~inputs:[ ("x", "ab") ]).exited;
        check_bool "long exits" true (Eval.run p ~inputs:[ ("x", "abcd") ]).exited);
    test "strlen == and >= evaluate" (fun () ->
        let p = parse {|if (strlen(input("x")) == 2) { query("y"); }|} in
        check_int "len 2 queries" 1 (List.length (Eval.queries p ~inputs:[ ("x", "ab") ]));
        check_int "len 3 skips" 0 (List.length (Eval.queries p ~inputs:[ ("x", "abc") ]));
        let p2 = parse {|if (strlen(input("x")) >= 2) { query("y"); }|} in
        check_int "ge" 1 (List.length (Eval.queries p2 ~inputs:[ ("x", "ab") ])));
    test "length check constrains the exploit language" (fun () ->
        (* exploit must contain a quote AND have length exactly 3 *)
        let p =
          parse
            {|$x = input("x");
              if (!(strlen($x) == 3)) { exit; }
              query("SELECT " . $x);|}
        in
        match Symexec.first_exploit ~attack:Attack.contains_quote p with
        | Some [ ("x", w) ] ->
            check_int "length 3" 3 (String.length w);
            check_bool "has quote" true (String.contains w '\'');
            check_bool "fires" true
              (Eval.vulnerable_run ~attack:Attack.contains_quote p
                 ~inputs:[ ("x", w) ])
        | _ -> Alcotest.fail "expected exploit on x");
    test "length window can close the bug" (fun () ->
        (* needs a quote, but only the empty string is allowed *)
        let p =
          parse
            {|$x = input("x");
              if (!(strlen($x) <= 0)) { exit; }
              query("SELECT " . $x);|}
        in
        check_bool "safe" true
          (Symexec.first_exploit ~attack:Attack.contains_quote p = None));
  ]

let case_tests =
  [
    test "strtolower parses and evaluates" (fun () ->
        let p = parse {|$x = strtolower(input("x")); query($x);|} in
        Alcotest.(check (list string))
          "lowered" [ "a'b" ]
          (Eval.queries p ~inputs:[ ("x", "A'B") ]));
    test "filter on lowered value, sink on raw value" (fun () ->
        (* the filter checks strtolower($x) but the query uses $x —
           the solver must pull the constraint back through the case
           map *)
        let p =
          parse
            {|$x = input("x");
              if (!preg_match(/^[a-z']{1,6}$/, strtolower($x))) { exit; }
              query("SELECT " . $x);|}
        in
        match Symexec.first_exploit ~attack:Attack.contains_quote p with
        | Some [ ("x", w) ] ->
            check_bool "fires concretely" true
              (Eval.vulnerable_run ~attack:Attack.contains_quote p
                 ~inputs:[ ("x", w) ])
        | _ -> Alcotest.fail "expected exploit");
    test "conflicting raw and lowered constraints are unsat" (fun () ->
        (* x must be all-uppercase, but lower(x) must equal "ok" and
           the sink needs a quote: impossible *)
        let p =
          parse
            {|$x = input("x");
              if (!preg_match(/^[A-Z]+$/, $x)) { exit; }
              if (!(strtolower($x) == "ok")) { exit; }
              query("SELECT " . $x);|}
        in
        check_bool "safe" true
          (Symexec.first_exploit ~attack:Attack.contains_quote p = None));
    test "upper of lower composes to upper" (fun () ->
        let p = parse {|query(strtoupper(strtolower(input("x"))));|} in
        Alcotest.(check (list string))
          "upper" [ "AB" ]
          (Eval.queries p ~inputs:[ ("x", "aB") ]));
    test "case-mapped exploit is verified end to end" (fun () ->
        (* classic bypass: the filter lowercases before checking a
           blacklist word, but the attack payload is case-insensitive
           SQL anyway — generated input must pass the filter *)
        let p =
          parse
            {|$x = input("x");
              if (strtolower($x) == "drop") { exit; }
              query("SELECT * FROM t WHERE c=" . $x);|}
        in
        match Symexec.first_exploit ~attack:Attack.contains_quote p with
        | Some inputs ->
            check_bool "fires" true
              (Eval.vulnerable_run ~attack:Attack.contains_quote p ~inputs)
        | None -> Alcotest.fail "expected exploit");
  ]

let case_props =
  let program_gen =
    let open QCheck2.Gen in
    let* pat = oneofl [ "/^[a-z]+$/"; "/^[a-z']{1,5}$/"; "/'/" ] in
    let* wrap = oneofl [ `Plain; `Lower; `Upper ] in
    let* len_cap = oneofl [ None; Some 4; Some 8 ] in
    let wrap_expr e =
      match wrap with
      | `Plain -> e
      | `Lower -> Ast.Lower e
      | `Upper -> Ast.Upper e
    in
    let guards =
      [
        Ast.If
          ( Ast.Not
              (Ast.Preg_match
                 (Regex.Parser.parse_pattern_exn pat, wrap_expr (Ast.Input "x"))),
            [ Ast.Exit ],
            [] );
      ]
      @
      match len_cap with
      | None -> []
      | Some n ->
          [ Ast.If (Ast.Not (Ast.Strlen (Ast.Input "x", Ast.Len_le, n)), [ Ast.Exit ], []) ]
    in
    return (guards @ [ Ast.Query (Ast.Concat (Ast.Str "q=", Ast.Input "x")) ])
  in
  [
    qtest ~count:40 "case/length exploits always reproduce concretely"
      program_gen
      (fun program ->
        match Symexec.first_exploit ~attack:Attack.contains_quote program with
        | None -> true
        | Some inputs ->
            Eval.vulnerable_run ~attack:Attack.contains_quote program ~inputs);
  ]

module Fst = Automata.Fst

let fst_tests =
  [
    test "addslashes application" (fun () ->
        check_string "escape" "a\\'b\\\"c\\\\d"
          (Option.get (Fst.apply Fst.addslashes "a'b\"c\\d"));
        check_string "clean" "abc" (Option.get (Fst.apply Fst.addslashes "abc")));
    test "replace_char application" (fun () ->
        check_string "double quotes" "a''b''"
          (Option.get (Fst.apply (Fst.replace_char '\'' "''") "a'b'"));
        check_string "delete" "ab"
          (Option.get (Fst.apply (Fst.replace_char 'x' "") "axbx")));
    test "identity and map" (fun () ->
        check_string "id" "xyz" (Option.get (Fst.apply Fst.identity "xyz"));
        check_string "map" "XYZ"
          (Option.get (Fst.apply (Fst.map_chars Char.uppercase_ascii) "xYz")));
    test "delete_chars" (fun () ->
        check_string "strip digits" "ab"
          (Option.get (Fst.apply (Fst.delete_chars Charset.digit) "a1b2")));
    test "preimage of addslashes" (fun () ->
        (* which inputs make addslashes produce \' ? exactly ' *)
        let target = Nfa.of_word "\\'" in
        let pre = Fst.preimage Fst.addslashes target in
        check_bool "quote" true (Nfa.accepts pre "'");
        check_bool "literal backslash-quote" false (Nfa.accepts pre "\\'");
        check_bool "empty" false (Nfa.accepts pre ""));
    test "preimage: addslashes output never has a bare quote" (fun () ->
        (* {w | addslashes(w) ∈ Σ* ' Σ* with no preceding \ } — the
           escaped output can still CONTAIN quotes, but each is
           preceded by a backslash; inputs mapping into the "bare
           quote" language: none *)
        let bare_quote =
          re "[^\\\\']*'.*" (* a quote not preceded by a backslash at the front *)
        in
        let pre = Fst.preimage Fst.addslashes bare_quote in
        check_bool "unreachable" true (Automata.Lang.is_empty pre));
    test "image of a language" (fun () ->
        let img = Fst.image Fst.addslashes (re "a'|b") in
        check_bool "a\\'" true (Nfa.accepts img "a\\'");
        check_bool "b" true (Nfa.accepts img "b");
        check_bool "a'" false (Nfa.accepts img "a'"));
  ]

let fst_props =
  [
    qtest ~count:60 "preimage is exact inverse-image semantics"
      QCheck2.Gen.(
        let* m = Helpers.nfa_gen in
        let* w = Helpers.word_gen in
        let* which = int_bound 2 in
        return (m, w, which))
      (fun (m, w, which) ->
        let fst =
          match which with
          | 0 -> Fst.addslashes
          | 1 -> Fst.replace_char 'a' "bb"
          | _ -> Fst.delete_chars (Charset.of_string "b")
        in
        match Fst.apply fst w with
        | None -> true
        | Some image_w ->
            Nfa.accepts (Fst.preimage fst m) w = Nfa.accepts m image_w);
    qtest ~count:60 "image contains the map of every sample" Helpers.nfa_gen
      (fun m ->
        let img = Fst.image Fst.addslashes m in
        List.for_all
          (fun w ->
            match Fst.apply Fst.addslashes w with
            | Some w' -> Nfa.accepts img w'
            | None -> true)
          (Nfa.sample_words m ~max_len:5 ~max_count:8));
    qtest ~count:40 "map_chars fst agrees with Relabel" Helpers.nfa_gen
      (fun m ->
        Automata.Lang.equal
          (Fst.preimage (Fst.map_chars Char.lowercase_ascii) m)
          (Relabel.preimage Char.lowercase_ascii m));
  ]

let sanitizer_tests =
  let parse = Lang_parser.parse_exn in
  [
    test "addslashes closes the quote injection" (fun () ->
        (* the classic correct fix: every quote in the input arrives
           escaped, so the query value cannot contain a bare quote *)
        let p =
          parse
            {|$x = input("x");
              query("SELECT * FROM t WHERE a = '" . addslashes($x) . "'");|}
        in
        match (Webapp.Symexec.analyze ~attack:Webapp.Attack.contains_quote p).Webapp.Symexec.candidates with
        | [ q ] -> (
            (* quote-containing outputs DO exist (escaped as \'), so
               the regex approximation still fires... *)
            match (Webapp.Symexec.solve q).Webapp.Symexec.assignment with
            | None -> ()
            | Some a ->
                (* ...but every generated exploit, run concretely,
                   keeps the query parseable: structure preserved *)
                let inputs =
                  Webapp.Symexec.exploit_inputs q a
                  @ List.filter_map
                      (fun i -> if i = "x" then None else Some (i, "a"))
                      (Ast.inputs p)
                in
                let query = List.hd (Eval.queries p ~inputs) in
                check_bool "still parses" true (Sql.Parser.well_formed query))
        | _ -> Alcotest.fail "expected one candidate");
    test "str_replace('','') sanitizer is bypassable when incomplete" (fun () ->
        (* deleting quotes only: classic bypass is impossible for
           quotes, but the filter leaves backslashes alone — here we
           just confirm quote-deletion makes the quote attack unsat *)
        let p =
          parse
            {|$x = input("x");
              query("SELECT * FROM t WHERE a = " . str_replace("'", "", $x));|}
        in
        check_bool "quote attack unsat" true
          (Webapp.Symexec.first_exploit ~attack:Webapp.Attack.contains_quote p = None));
    test "str_replace doubling quotes keeps pairs" (fun () ->
        let p = parse {|query(str_replace("'", "''", input("x")));|} in
        Alcotest.(check (list string))
          "doubled" [ "a''b" ]
          (Eval.queries p ~inputs:[ ("x", "a'b") ]));
    test "sanitized and raw read of the same input" (fun () ->
        (* the filter checks the raw input but the query uses the
           sanitized one: solver must keep the two views consistent *)
        let p =
          parse
            {|$x = input("x");
              if (!preg_match(/^[a-z']{1,4}$/, $x)) { exit; }
              query("SELECT " . str_replace("'", "", $x));|}
        in
        (* after quote deletion the query can never contain a quote *)
        check_bool "safe" true
          (Webapp.Symexec.first_exploit ~attack:Webapp.Attack.contains_quote p = None));
    test "chained sanitizers compose" (fun () ->
        let p = parse {|query(addslashes(strtolower(input("x"))));|} in
        Alcotest.(check (list string))
          "lower then slash" [ "a\\'b" ]
          (Eval.queries p ~inputs:[ ("x", "A'B") ]));
  ]

let suite =
  [
    ("relabel:unit", relabel_tests);
    ("relabel:props", relabel_props);
    ("fst:unit", fst_tests);
    ("fst:props", fst_props);
    ("extensions:strlen", strlen_tests);
    ("extensions:case", case_tests);
    ("extensions:sanitizers", sanitizer_tests);
    ("extensions:props", case_props);
  ]
