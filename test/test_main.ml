let () =
  Alcotest.run "dprle"
    (Test_charset.suite @ Test_nfa.suite @ Test_regex.suite @ Test_dprle.suite
   @ Test_crosscheck.suite @ Test_store.suite @ Test_sysparse.suite @ Test_telemetry.suite @ Test_webapp.suite @ Test_analysis.suite @ Test_corpus.suite @ Test_extensions.suite @ Test_witness.suite @ Test_bounded.suite @ Test_sql.suite @ Test_smtlib.suite @ Test_engine.suite @ Test_analyze.suite
   @ Test_api.suite @ Test_serve.suite)
