open Helpers
module Nfa = Automata.Nfa
module Dfa = Automata.Dfa
module Ops = Automata.Ops
module Lang = Automata.Lang

let ab = Nfa.of_word "ab"
let a = Nfa.of_charset (Charset.singleton 'a')

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let unit_tests =
  [
    test "empty_lang accepts nothing" (fun () ->
        check_bool "eps" false (Nfa.accepts Nfa.empty_lang "");
        check_bool "a" false (Nfa.accepts Nfa.empty_lang "a");
        check_bool "is_empty" true (Nfa.is_empty_lang Nfa.empty_lang));
    test "epsilon_lang accepts only eps" (fun () ->
        check_bool "eps" true (Nfa.accepts Nfa.epsilon_lang "");
        check_bool "a" false (Nfa.accepts Nfa.epsilon_lang "a"));
    test "of_word" (fun () ->
        check_bool "ab" true (Nfa.accepts ab "ab");
        check_bool "a" false (Nfa.accepts ab "a");
        check_bool "abc" false (Nfa.accepts ab "abc");
        check_bool "eps" false (Nfa.accepts ab ""));
    test "of_word empty string" (fun () ->
        let m = Nfa.of_word "" in
        check_bool "eps" true (Nfa.accepts m "");
        check_bool "x" false (Nfa.accepts m "x"));
    test "sigma_star accepts everything" (fun () ->
        check_bool "eps" true (Nfa.accepts Nfa.sigma_star "");
        check_bool "junk" true (Nfa.accepts Nfa.sigma_star "q!\000xyz"));
    test "of_charset" (fun () ->
        let d = Nfa.of_charset Charset.digit in
        check_bool "7" true (Nfa.accepts d "7");
        check_bool "a" false (Nfa.accepts d "a");
        check_bool "77" false (Nfa.accepts d "77"));
    test "concat bridge is the only cross edge" (fun () ->
        let r = Ops.concat ab a in
        check_bool "aba" true (Nfa.accepts r.machine "aba");
        check_bool "ab" false (Nfa.accepts r.machine "ab");
        let src, dst = r.bridge in
        check_bool "bridge is eps edge" true (Nfa.has_eps_edge r.machine src dst);
        check_int "bridge src is left final" (r.left_embed (Nfa.final ab)) src;
        check_int "bridge dst is right start" (r.right_embed (Nfa.start a)) dst);
    test "union" (fun () ->
        let u = Ops.union_lang ab a in
        check_bool "ab" true (Nfa.accepts u "ab");
        check_bool "a" true (Nfa.accepts u "a");
        check_bool "b" false (Nfa.accepts u "b"));
    test "star" (fun () ->
        let s = Ops.star a in
        check_bool "eps" true (Nfa.accepts s "");
        check_bool "aaa" true (Nfa.accepts s "aaa");
        check_bool "ab" false (Nfa.accepts s "ab"));
    test "plus requires one" (fun () ->
        let p = Ops.plus a in
        check_bool "eps" false (Nfa.accepts p "");
        check_bool "a" true (Nfa.accepts p "a");
        check_bool "aa" true (Nfa.accepts p "aa"));
    test "opt" (fun () ->
        let o = Ops.opt a in
        check_bool "eps" true (Nfa.accepts o "");
        check_bool "a" true (Nfa.accepts o "a");
        check_bool "aa" false (Nfa.accepts o "aa"));
    test "repeat {2,4}" (fun () ->
        let r = Ops.repeat a ~min_count:2 ~max_count:(Some 4) in
        List.iter
          (fun (w, expect) -> check_bool w expect (Nfa.accepts r w))
          [ ("", false); ("a", false); ("aa", true); ("aaa", true);
            ("aaaa", true); ("aaaaa", false) ]);
    test "repeat {3,}" (fun () ->
        let r = Ops.repeat a ~min_count:3 ~max_count:None in
        check_bool "aa" false (Nfa.accepts r "aa");
        check_bool "aaa" true (Nfa.accepts r "aaa");
        check_bool "6" true (Nfa.accepts r "aaaaaa"));
    test "intersect provenance" (fun () ->
        let r = Ops.intersect (Ops.star a) (Ops.plus a) in
        check_bool "a" true (Nfa.accepts r.machine "a");
        check_bool "eps" false (Nfa.accepts r.machine "");
        (* every product state projects back consistently *)
        List.iter
          (fun q ->
            let p1, p2 = r.pair_of q in
            match r.state_of_pair (p1, p2) with
            | Some q' -> check_int "roundtrip" q q'
            | None -> Alcotest.fail "pair lookup failed")
          (Nfa.states r.machine));
    test "intersect of disjoint languages is empty" (fun () ->
        let m = Ops.inter_lang ab a in
        check_bool "empty" true (Nfa.is_empty_lang m));
    test "shortest_word" (fun () ->
        check_string "ab" "ab" (Option.get (Nfa.shortest_word ab));
        check_bool "none" true (Nfa.shortest_word Nfa.empty_lang = None);
        check_string "eps" "" (Option.get (Nfa.shortest_word Nfa.sigma_star)));
    test "induce_from_final changes accepted language" (fun () ->
        let r = Ops.concat ab a in
        let src, dst = r.bridge in
        let left = Nfa.induce_from_final r.machine src in
        let right = Nfa.induce_from_start r.machine dst in
        check_bool "left ab" true (Nfa.accepts left "ab");
        check_bool "left aba" false (Nfa.accepts left "aba");
        check_bool "right a" true (Nfa.accepts right "a"));
    test "trim preserves language and shrinks" (fun () ->
        let bloated = Ops.union_lang (Ops.inter_lang ab a) ab in
        let trimmed, _ = Nfa.trim bloated in
        check_bool "same lang" true (Lang.equal bloated trimmed);
        check_bool "not bigger" true
          (Nfa.num_states trimmed <= Nfa.num_states bloated));
    test "reverse" (fun () ->
        let r = Nfa.reverse ab in
        check_bool "ba" true (Nfa.accepts r "ba");
        check_bool "ab" false (Nfa.accepts r "ab"));
    test "sample_words shortest first" (fun () ->
        let words = Nfa.sample_words (Ops.star a) ~max_len:4 ~max_count:3 in
        Alcotest.(check (list string)) "prefix" [ ""; "a"; "aa" ] words);
    test "to_dot mentions all states" (fun () ->
        let dot = Nfa.to_dot ab in
        check_bool "digraph" true (String.length dot > 0);
        check_bool "has start" true (contains_substring dot "__start"));
    test "builder dedups repeated edges" (fun () ->
        let b = Nfa.Builder.create () in
        let first = Nfa.Builder.add_states b 2 in
        for _ = 1 to 5 do
          Nfa.Builder.add_trans b first (Charset.singleton 'a') (first + 1);
          Nfa.Builder.add_eps b first (first + 1)
        done;
        (* a distinct label on the same edge must survive *)
        Nfa.Builder.add_trans b first (Charset.singleton 'b') (first + 1);
        let m = Nfa.Builder.finish b ~start:first ~final:(first + 1) in
        check_int "char edges" 2 (List.length (Nfa.char_transitions m first));
        check_int "eps edges" 1 (List.length (Nfa.eps_transitions_from m first));
        check_bool "a" true (Nfa.accepts m "a");
        check_bool "b" true (Nfa.accepts m "b"));
    test "repeat builds linearly many states" (fun () ->
        let k = 12 in
        let bounded = Ops.repeat ab ~min_count:k ~max_count:(Some (2 * k)) in
        let unbounded = Ops.repeat ab ~min_count:k ~max_count:None in
        (* one copy of |ab| per mandatory/optional repetition plus the
           fresh start/final — far below the old quadratic blowup *)
        let copy = Nfa.num_states ab in
        check_int "bounded states" ((2 * k * copy) + 2) (Nfa.num_states bounded);
        check_int "unbounded states" (((k + 1) * copy) + 2)
          (Nfa.num_states unbounded));
  ]

let dfa_tests =
  [
    test "determinize preserves membership" (fun () ->
        let m = Ops.union_lang (Ops.star ab) (Ops.plus a) in
        let d = Dfa.of_nfa m in
        List.iter
          (fun w -> check_bool w (Nfa.accepts m w) (Dfa.accepts d w))
          [ ""; "a"; "ab"; "abab"; "aa"; "aba"; "b" ]);
    test "complement flips membership" (fun () ->
        let d = Dfa.complement (Dfa.of_nfa ab) in
        check_bool "ab" false (Dfa.accepts d "ab");
        check_bool "x" true (Dfa.accepts d "x");
        check_bool "eps" true (Dfa.accepts d ""));
    test "minimize sigma-star to one state" (fun () ->
        let d = Dfa.minimize (Dfa.of_nfa Nfa.sigma_star) in
        check_int "states" 1 (Dfa.num_states d));
    test "minimize empty language" (fun () ->
        let d = Dfa.minimize (Dfa.of_nfa Nfa.empty_lang) in
        check_bool "empty" true (Dfa.is_empty_lang d));
    test "equiv distinguishes star vs plus" (fun () ->
        let star_d = Dfa.of_nfa (Ops.star a) in
        let plus_d = Dfa.of_nfa (Ops.plus a) in
        check_bool "differ" false (Dfa.equiv star_d plus_d);
        check_bool "self" true (Dfa.equiv star_d star_d));
    test "subset star/plus" (fun () ->
        let star_d = Dfa.of_nfa (Ops.star a) in
        let plus_d = Dfa.of_nfa (Ops.plus a) in
        check_bool "plus in star" true (Dfa.subset plus_d star_d);
        check_bool "star not in plus" false (Dfa.subset star_d plus_d));
    test "counterexample is the missing eps" (fun () ->
        let star_d = Dfa.of_nfa (Ops.star a) in
        let plus_d = Dfa.of_nfa (Ops.plus a) in
        check_string "eps" "" (Option.get (Dfa.counterexample star_d plus_d)));
    test "to_nfa round trip" (fun () ->
        let m = Ops.union_lang ab (Ops.star a) in
        let back = Dfa.to_nfa (Dfa.of_nfa m) in
        check_bool "equal" true (Lang.equal m back));
  ]

let prop_tests =
  let two_nfas_and_word =
    QCheck2.Gen.(
      let* m1 = nfa_gen in
      let* m2 = nfa_gen in
      let* w =
        oneof [ word_gen; word_for m1; word_for m2 ]
      in
      return (m1, m2, w))
  in
  [
    qtest ~count:100 "determinization preserves language"
      QCheck2.Gen.(
        let* m = nfa_gen in
        let* w = word_for m in
        return (m, w))
      (fun (m, w) -> Nfa.accepts m w = Dfa.accepts (Dfa.of_nfa m) w);
    qtest ~count:100 "minimize preserves language"
      QCheck2.Gen.(
        let* m = nfa_gen in
        let* w = word_for m in
        return (m, w))
      (fun (m, w) ->
        Nfa.accepts m w = Dfa.accepts (Dfa.minimize (Dfa.of_nfa m)) w);
    qtest ~count:60 "moore and brzozowski minimization agree"
      nfa_gen
      (fun m ->
        let d = Dfa.of_nfa m in
        let m1 = Dfa.minimize d and m2 = Dfa.minimize_brzozowski d in
        Dfa.equiv m1 m2 && Dfa.num_states m1 = Dfa.num_states m2);
    qtest ~count:100 "product is intersection" two_nfas_and_word
      (fun (m1, m2, w) ->
        Nfa.accepts (Ops.inter_lang m1 m2) w
        = (Nfa.accepts m1 w && Nfa.accepts m2 w));
    qtest ~count:100 "union is union" two_nfas_and_word (fun (m1, m2, w) ->
        Nfa.accepts (Ops.union_lang m1 m2) w
        = (Nfa.accepts m1 w || Nfa.accepts m2 w));
    qtest ~count:100 "concat contains pairwise products" two_nfas_and_word
      (fun (m1, m2, _) ->
        match (Nfa.shortest_word m1, Nfa.shortest_word m2) with
        | Some w1, Some w2 -> Nfa.accepts (Ops.concat_lang m1 m2) (w1 ^ w2)
        | _ -> true);
    qtest ~count:100 "trim preserves language" two_nfas_and_word
      (fun (m, _, w) ->
        let trimmed, _ = Nfa.trim m in
        Nfa.accepts m w = Nfa.accepts trimmed w);
    qtest ~count:100 "reverse of reverse" two_nfas_and_word (fun (m, _, w) ->
        Nfa.accepts (Nfa.reverse (Nfa.reverse m)) w = Nfa.accepts m w);
    qtest ~count:100 "complement is complement" two_nfas_and_word
      (fun (m, _, w) ->
        Dfa.accepts (Dfa.complement (Dfa.of_nfa m)) w = not (Nfa.accepts m w));
    qtest ~count:60 "subset oracle agrees with witnesses" two_nfas_and_word
      (fun (m1, m2, _) ->
        let d1 = Dfa.of_nfa m1 and d2 = Dfa.of_nfa m2 in
        match Dfa.counterexample d1 d2 with
        | None -> Dfa.subset d1 d2
        | Some w -> Nfa.accepts m1 w && not (Nfa.accepts m2 w));
    qtest ~count:60 "shortest_word is accepted and minimal-length"
      nfa_gen
      (fun m ->
        match Nfa.shortest_word m with
        | None -> Nfa.is_empty_lang m
        | Some w ->
            Nfa.accepts m w
            && List.for_all
                 (fun s -> String.length s >= String.length w)
                 (Nfa.sample_words m ~max_len:6 ~max_count:5));
    qtest ~count:60 "sample words are all accepted" nfa_gen (fun m ->
        List.for_all (Nfa.accepts m) (Nfa.sample_words m ~max_len:6 ~max_count:10));
    qtest ~count:60 "lang equal reflexive via ops" nfa_gen (fun m ->
        Lang.equal m (Ops.union_lang m m));
    qtest ~count:40 "compact preserves language" nfa_gen (fun m ->
        Lang.equal m (Lang.compact m));
  ]

let suite =
  [
    ("nfa:unit", unit_tests);
    ("dfa:unit", dfa_tests);
    ("automata:props", prop_tests);
  ]
