open Helpers
module Ast = Regex.Ast
module Parser = Regex.Parser
module Compile = Regex.Compile
module Derivative = Regex.Derivative
module State_elim = Regex.State_elim
module Nfa = Automata.Nfa
module Lang = Automata.Lang

let parse = Parser.parse_exn

let matches_via_nfa re w = Nfa.accepts (Compile.to_nfa re) w

let check_matches re cases =
  let compiled = Compile.to_nfa (parse re) in
  List.iter
    (fun (w, expect) ->
      check_bool (Printf.sprintf "%s =~ /%s/" w re) expect (Nfa.accepts compiled w))
    cases

let parser_tests =
  [
    test "literal word" (fun () ->
        check_matches "abc" [ ("abc", true); ("ab", false); ("abcd", false) ]);
    test "alternation" (fun () ->
        check_matches "ab|cd" [ ("ab", true); ("cd", true); ("ad", false) ]);
    test "star binds tighter than seq" (fun () ->
        check_matches "ab*" [ ("a", true); ("abbb", true); ("abab", false) ]);
    test "group changes binding" (fun () ->
        check_matches "(ab)*" [ ("", true); ("abab", true); ("aba", false) ]);
    test "non-capturing group syntax" (fun () ->
        check_matches "(?:ab)+" [ ("ab", true); ("abab", true); ("", false) ]);
    test "empty group is epsilon" (fun () ->
        check_matches "()" [ ("", true); ("a", false) ]);
    test "class with range" (fun () ->
        check_matches "[a-c]+" [ ("abc", true); ("d", false); ("", false) ]);
    test "negated class" (fun () ->
        check_matches "[^a-c]" [ ("d", true); ("a", false); ("'", true) ]);
    test "class with literal dash" (fun () ->
        check_matches "[a-]" [ ("a", true); ("-", true); ("b", false) ]);
    test "digit escape" (fun () ->
        check_matches "\\d+" [ ("123", true); ("12a", false); ("", false) ]);
    test "word and space escapes" (fun () ->
        check_matches "\\w+\\s\\w+"
          [ ("ab cd", true); ("a\tb", true); ("ab", false) ]);
    test "negated escapes" (fun () ->
        check_matches "\\D\\W\\S" [ ("1!x", false); ("!!x", true); ("a!x", true) ]);
    test "hex escape" (fun () -> check_matches "\\x41+" [ ("AAA", true); ("B", false) ]);
    test "escaped metacharacters" (fun () ->
        check_matches "\\(\\)\\*\\+\\?\\." [ ("()*+?.", true); ("()*+?x", false) ]);
    test "dot is any byte" (fun () ->
        check_matches "." [ ("a", true); ("\000", true); ("\n", true); ("ab", false) ]);
    test "counted repetition" (fun () ->
        check_matches "a{3}" [ ("aaa", true); ("aa", false); ("aaaa", false) ]);
    test "bounded repetition" (fun () ->
        check_matches "a{1,3}"
          [ ("", false); ("a", true); ("aaa", true); ("aaaa", false) ]);
    test "unbounded repetition" (fun () ->
        check_matches "a{2,}" [ ("a", false); ("aa", true); ("aaaaa", true) ]);
    test "quantifier stacking" (fun () ->
        check_matches "(a{2}){2}" [ ("aaaa", true); ("aaa", false) ]);
    test "class escapes inside class" (fun () ->
        check_matches "[\\d_]+" [ ("12_3", true); ("a", false) ]);
    test "parse errors carry positions" (fun () ->
        (match Parser.parse "ab(" with
        | Error { position; _ } -> check_int "pos" 3 position
        | Ok _ -> Alcotest.fail "expected error");
        List.iter
          (fun s ->
            match Parser.parse s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected parse error for %S" s)
          [ "*a"; "a{2,1}"; "[abc"; "a|b)"; "\\x4"; "a{,3}"; "mid^dle"; "do$llar" ]);
    test "empty pattern matches only empty string" (fun () ->
        check_matches "" [ ("", true); ("a", false) ]);
  ]

let pattern_tests =
  let accepts p w = Nfa.accepts (Compile.pattern_to_nfa (Parser.parse_pattern_exn p)) w in
  [
    test "unanchored pattern matches substrings" (fun () ->
        check_bool "middle" true (accepts "/bc/" "abcd");
        check_bool "absent" false (accepts "/bc/" "acbd"));
    test "paper's faulty filter /[\\d]+$/" (fun () ->
        (* the check of Fig. 1 line 2: missing ^ lets arbitrary
           prefixes through as long as the string ends with digits *)
        check_bool "digits pass" true (accepts "/[\\d]+$/" "42");
        check_bool "attack passes filter" true
          (accepts "/[\\d]+$/" "' OR 1=1 ; DROP news --9");
        check_bool "non-digit tail fails" false (accepts "/[\\d]+$/" "9a"));
    test "corrected filter /^[\\d]+$/" (fun () ->
        check_bool "digits pass" true (accepts "/^[\\d]+$/" "42");
        check_bool "attack blocked" false
          (accepts "/^[\\d]+$/" "' OR 1=1 ; DROP news --9"));
    test "start-only anchor" (fun () ->
        check_bool "prefix" true (accepts "/^ab/" "abxyz");
        check_bool "not prefix" false (accepts "/^ab/" "xab"));
    test "delimiters are optional" (fun () ->
        check_bool "bare" true (accepts "b" "abc"));
    test "escaped dollar is a literal" (fun () ->
        let p = Parser.parse_pattern_exn "/a\\$$/" in
        check_bool "anchored" true p.anchored_end;
        check_bool "a$" true (Nfa.accepts (Compile.pattern_to_nfa p) "xa$"));
    test "reject language is the complement" (fun () ->
        let p = Parser.parse_pattern_exn "/[\\d]+$/" in
        let acc = Compile.pattern_to_nfa p in
        let rej = Compile.pattern_reject_nfa p in
        List.iter
          (fun w ->
            check_bool w (not (Nfa.accepts acc w)) (Nfa.accepts rej w))
          [ "42"; "abc"; "9a"; "" ]);
    test "pattern_matches agrees with compiled pattern" (fun () ->
        let p = Parser.parse_pattern_exn "/b+c$/" in
        List.iter
          (fun w ->
            check_bool w
              (Nfa.accepts (Compile.pattern_to_nfa p) w)
              (Derivative.pattern_matches p w))
          [ "abc"; "bc"; "c"; "abcd"; "" ]);
  ]

let derivative_tests =
  [
    test "nullable" (fun () ->
        check_bool "eps" true (Derivative.nullable Ast.Epsilon);
        check_bool "star" true (Derivative.nullable (parse "a*"));
        check_bool "plus" false (Derivative.nullable (parse "a+"));
        check_bool "a{0,3}" true (Derivative.nullable (parse "a{0,3}"));
        check_bool "alt" true (Derivative.nullable (parse "a|")));
    test "deriv of char" (fun () ->
        check_bool "match" true (Derivative.matches (parse "abc") "abc");
        check_bool "no match" false (Derivative.matches (parse "abc") "abd"));
    test "deriv of repeat" (fun () ->
        check_bool "a{2,4}: aaa" true (Derivative.matches (parse "a{2,4}") "aaa");
        check_bool "a{2,4}: a" false (Derivative.matches (parse "a{2,4}") "a");
        check_bool "a{2,4}: 5" false (Derivative.matches (parse "a{2,4}") "aaaaa"));
  ]

(* Random regex ASTs, built with the smart constructors so they stay
   in normal form. *)
let ast_gen : Ast.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        return Ast.Epsilon;
        map (fun c -> Ast.Chars (Charset.singleton c)) Helpers.small_char;
        oneofl
          [ Ast.Chars Charset.digit; Ast.Chars (Charset.of_string "ab'");
            Ast.any; Ast.Chars (Charset.range 'a' 'c') ];
      ]
  in
  let rec go n =
    if n <= 1 then leaf
    else
      let sub = go (n / 2) in
      oneof
        [
          leaf;
          map2 Ast.seq sub sub;
          map2 Ast.alt sub sub;
          map Ast.star sub;
          map Ast.plus sub;
          map Ast.opt sub;
          map2 (fun r lo -> Ast.repeat r lo (Some (lo + 2))) sub (int_bound 2);
        ]
  in
  sized_size (int_range 1 14) go

let prop_tests =
  let re_and_words =
    QCheck2.Gen.(
      let* re = ast_gen in
      let* words =
        let nfa_samples = Nfa.sample_words (Compile.to_nfa re) ~max_len:6 ~max_count:5 in
        let* random_words = list_size (int_range 1 5) word_gen in
        return (nfa_samples @ random_words)
      in
      return (re, words))
  in
  [
    qtest ~count:150 "thompson and derivative matchers agree" re_and_words
      (fun (re, words) ->
        List.for_all (fun w -> matches_via_nfa re w = Derivative.matches re w) words);
    qtest ~count:150 "print/parse round trip preserves language" ast_gen
      (fun re ->
        match Parser.parse (Ast.to_string re) with
        | Error _ -> false
        | Ok re' -> Lang.equal (Compile.to_nfa re) (Compile.to_nfa re'));
    qtest ~count:80 "state elimination preserves language" Helpers.nfa_gen
      (fun m -> Lang.equal m (Compile.to_nfa (State_elim.to_regex m)));
    qtest ~count:80 "state elimination of compiled regex" ast_gen (fun re ->
        let m = Compile.to_nfa re in
        Lang.equal m (Compile.to_nfa (State_elim.to_regex m)));
    qtest ~count:150 "nullable agrees with empty-string acceptance" ast_gen
      (fun re -> Derivative.nullable re = matches_via_nfa re "");
    qtest ~count:100 "smart constructors preserve derivative semantics"
      QCheck2.Gen.(
        let* a = ast_gen in
        let* b = ast_gen in
        let* w = word_gen in
        return (a, b, w))
      (fun (a, b, w) ->
        Derivative.matches (Ast.alt a b) w
        = (Derivative.matches a w || Derivative.matches b w));
  ]

let simplify_tests =
  let simp s = Ast.to_string (Regex.Simplify.simplify (parse s)) in
  [
    test "quantifier fusion" (fun () ->
        check_string "aa*" "a+" (simp "aa*");
        check_string "a*a*" "a*" (simp "a*a*");
        check_string "a{1,2}a{0,3}" "a{1,5}" (simp "a{1,2}a{0,3}");
        check_string "a?a" "a{1,2}" (simp "a?a"));
    test "alternation cleanup" (fun () ->
        check_string "dedup" "ab" (simp "ab|ab");
        check_string "chars merge" "[a-c]" (simp "a|b|c");
        check_string "eps branch" "(?:ab)?" (simp "ab|()"));
    test "factoring" (fun () ->
        check_string "head" "a[bc]" (simp "ab|ac");
        check_string "tail" "[bc]a" (simp "ba|ca"));
    test "prune subsumed alternative" (fun () ->
        let pruned = Regex.Pretty.prune_alternatives (parse "ab|a.*") in
        check_bool "language kept" true
          (Lang.equal (Compile.to_nfa pruned) (Compile.to_nfa (parse "a.*")));
        check_bool "smaller" true (Ast.size pruned < Ast.size (parse "ab|a.*")));
    test "pretty on a machine" (fun () ->
        let m = Compile.to_nfa (parse "x(yy|yyyy)") in
        let printed = Regex.Pretty.pretty m in
        match Parser.parse printed with
        | Ok re -> check_bool "language" true (Lang.equal m (Compile.to_nfa re))
        | Error _ -> Alcotest.failf "unparseable output %S" printed);
  ]

let simplify_props =
  [
    qtest ~count:150 "simplify preserves language" ast_gen (fun re ->
        Lang.equal (Compile.to_nfa re) (Compile.to_nfa (Regex.Simplify.simplify re)));
    qtest ~count:150 "simplify never grows" ast_gen (fun re ->
        Ast.size (Regex.Simplify.simplify re) <= Ast.size re);
    qtest ~count:60 "prune_alternatives preserves language" ast_gen (fun re ->
        Lang.equal (Compile.to_nfa re)
          (Compile.to_nfa (Regex.Pretty.prune_alternatives re)));
    qtest ~count:60 "pretty output reparses to the same language"
      Helpers.nfa_gen
      (fun m ->
        match Parser.parse (Regex.Pretty.pretty m) with
        | Ok re -> Lang.equal m (Compile.to_nfa re)
        | Error _ -> false);
  ]

let suite =
  [
    ("regex:parser", parser_tests);
    ("regex:patterns", pattern_tests);
    ("regex:derivative", derivative_tests);
    ("regex:simplify", simplify_tests);
    ("regex:props", prop_tests);
    ("regex:simplify-props", simplify_props);
  ]
