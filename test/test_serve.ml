(* lib/serve: admission arithmetic, Prometheus rendering, the request
   handler, and in-process end-to-end passes over a real Unix socket
   (server on a thread, blocking client in the test). *)

open Helpers
module Request = Api.Request
module Response = Api.Response
module Server = Serve.Server
module Client = Serve.Client
module Admission = Serve.Admission

let fig1 =
  "let filter = /[\\d]+$/;\n\
   let prefix = \"nid_\";\n\
   let unsafe = /'/;\n\
   v1 <= filter;\n\
   prefix . v1 <= unsafe;\n"

let req ?budget_ms ?budget_states ~id kind =
  { Request.id; kind; budget_ms; budget_states }

let solve_req ?budget_ms ?budget_states id system =
  req ?budget_ms ?budget_states ~id
    (Request.Solve (Request.solve_defaults ~system))

let payload_tag (r : Response.t) = Response.payload_name r.payload

let error_code (r : Response.t) =
  match r.payload with
  | Response.Error { code; _ } -> Api.error_code_name code
  | p -> Alcotest.failf "expected an error payload, got %s" (Response.payload_name p)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in %S" what needle hay

(* ------------------------------------------------------------------ *)
(* Admission: pure arithmetic, no sockets. *)

let admission_tests =
  [
    test "no deadline is always admitted" (fun () ->
        let a = Admission.create () in
        Admission.observe a ~service_ns:1_000_000_000L;
        match Admission.decide a ~queue_depth:1000 ~workers:1 ~budget_ms:None with
        | Admission.Admit -> ()
        | Admission.Reject _ -> Alcotest.fail "deadline-free request rejected");
    test "projection is zero before any observation" (fun () ->
        let a = Admission.create () in
        check_int "wait" 0 (Admission.projected_wait_ms a ~queue_depth:50 ~workers:1);
        match Admission.decide a ~queue_depth:50 ~workers:1 ~budget_ms:(Some 1) with
        | Admission.Admit -> ()
        | Admission.Reject _ -> Alcotest.fail "rejected with no service history");
    test "projection scales with depth and workers" (fun () ->
        let a = Admission.create () in
        Admission.observe a ~service_ns:10_000_000L (* 10 ms *);
        check_int "depth 10, 1 worker" 100
          (Admission.projected_wait_ms a ~queue_depth:10 ~workers:1);
        check_int "depth 10, 2 workers" 50
          (Admission.projected_wait_ms a ~queue_depth:10 ~workers:2);
        check_int "empty queue" 0
          (Admission.projected_wait_ms a ~queue_depth:0 ~workers:1));
    test "tight deadlines behind a slow queue are rejected" (fun () ->
        let a = Admission.create () in
        Admission.observe a ~service_ns:50_000_000L (* 50 ms *);
        (match Admission.decide a ~queue_depth:4 ~workers:1 ~budget_ms:(Some 100) with
        | Admission.Reject r ->
            check_int "projected" 200 r.Response.projected_wait_ms;
            check_int "depth" 4 r.Response.queue_depth
        | Admission.Admit -> Alcotest.fail "100 ms deadline admitted behind 200 ms queue");
        match Admission.decide a ~queue_depth:4 ~workers:1 ~budget_ms:(Some 500) with
        | Admission.Admit -> ()
        | Admission.Reject _ -> Alcotest.fail "500 ms deadline rejected behind 200 ms queue");
    test "the EWMA decays a pathological outlier" (fun () ->
        let a = Admission.create () in
        Admission.observe a ~service_ns:1_000_000_000L (* 1 s outlier *);
        for _ = 1 to 30 do
          Admission.observe a ~service_ns:1_000_000L (* 1 ms steady state *)
        done;
        let w = Admission.projected_wait_ms a ~queue_depth:1 ~workers:1 in
        check_bool "outlier decayed" true (w <= 5));
  ]

(* ------------------------------------------------------------------ *)
(* Prometheus text rendering. *)

let metrics_tests =
  [
    test "sanitize maps dots and dashes to underscores" (fun () ->
        check_string "dots" "store_intern_hit"
          (Serve.Metrics_text.sanitize "store.intern.hit");
        check_string "dashes" "a_b_c" (Serve.Metrics_text.sanitize "a-b.c"));
    test "render emits typed, labeled series" (fun () ->
        let module M = Telemetry.Metrics in
        let reg = M.create_registry () in
        let c = M.Counter.make ~registry:reg "demo.hits" in
        M.Counter.incr c 3;
        M.Counter.incr ~labels:[ ("op", "concat") ] c 2;
        let g = M.Gauge.make ~registry:reg "demo.depth" in
        M.Gauge.set g 7;
        let text = Serve.Metrics_text.render (M.Snapshot.take reg) in
        check_contains "counter type" text "# TYPE demo_hits counter";
        check_contains "bare series" text "demo_hits 3";
        check_contains "labeled series" text "demo_hits{op=\"concat\"} 2";
        check_contains "gauge type" text "# TYPE demo_depth gauge";
        check_contains "gauge series" text "demo_depth 7");
    test "render is deterministic" (fun () ->
        let module M = Telemetry.Metrics in
        let reg = M.create_registry () in
        let c = M.Counter.make ~registry:reg "demo.z" in
        M.Counter.incr c 1;
        let c2 = M.Counter.make ~registry:reg "demo.a" in
        M.Counter.incr c2 2;
        let snap = M.Snapshot.take reg in
        check_string "stable" (Serve.Metrics_text.render snap)
          (Serve.Metrics_text.render snap));
  ]

(* ------------------------------------------------------------------ *)
(* Handler: in-domain request execution. *)

let handler_tests =
  [
    test "solve answers sat with the request id echoed" (fun () ->
        let resp = Serve.Handler.handle (solve_req "h1" fig1) in
        check_string "id" "h1" resp.Response.id;
        check_string "payload" "sat" (payload_tag resp));
    test "a repeated solve hits the warm store" (fun () ->
        ignore (Serve.Handler.handle (solve_req "warm0" fig1));
        let resp = Serve.Handler.handle (solve_req "warm1" fig1) in
        check_bool "intern hits" true (resp.Response.obs.Response.intern_hits > 0));
    test "an unparseable system is a parse_error, not an exception" (fun () ->
        let resp = Serve.Handler.handle (solve_req "bad" "this is not a system") in
        check_string "code" "parse_error" (error_code resp));
    test "a state budget of one trips during construction" (fun () ->
        (* a pattern no other test interns, so the store cannot satisfy
           the request without building fresh states *)
        let system = "let fresh = /zq[xw]{2,9}k/;\nv77 <= fresh;\n" in
        let resp =
          Serve.Handler.handle (solve_req ~budget_states:1 "tiny" system)
        in
        check_string "code" "budget_exceeded" (error_code resp));
    test "lint returns a structured report" (fun () ->
        let resp = Serve.Handler.handle (req ~id:"l" (Request.Lint fig1)) in
        check_string "payload" "lint" (payload_tag resp));
    test "an unknown attack language is a parse_error" (fun () ->
        let p =
          {
            (Request.webcheck_defaults ~program:"x = 'a';") with
            Request.attack = "no-such-attack";
          }
        in
        let resp = Serve.Handler.handle (req ~id:"w" (Request.Webcheck p)) in
        check_string "code" "parse_error" (error_code resp));
    test "stats reports the threaded request count" (fun () ->
        let resp = Serve.Handler.handle ~requests:42 (req ~id:"st" Request.Stats) in
        match resp.Response.payload with
        | Response.Stats_report { requests; _ } -> check_int "requests" 42 requests
        | p -> Alcotest.failf "expected stats, got %s" (Response.payload_name p));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end over a real socket. *)

let next_sock = ref 0

let fresh_listen () =
  incr next_sock;
  Server.Unix_socket
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "dprle-test-%d-%d.sock" (Unix.getpid ()) !next_sock))

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* Run the daemon on a thread, hand [f] the address, always shut the
   daemon down (idempotently — [f] may have already done so) and join
   before returning its lifetime outcome. *)
let with_server ?(configure = fun c -> c) f =
  let listen = fresh_listen () in
  let cfg = configure (Server.default_config listen) in
  let outcome = ref None in
  let t = Thread.create (fun () -> outcome := Some (Server.run cfg)) () in
  let cleanup () =
    (match Client.connect ~retries:3 listen with
    | Ok c ->
        ignore (Client.request c (req ~id:"cleanup" Request.Shutdown));
        Client.close c
    | Error _ -> ());
    Thread.join t
  in
  Fun.protect ~finally:cleanup (fun () -> f listen);
  !outcome

let decode_error line =
  match Api.decode_response ~max_bytes:(16 * 1024 * 1024) line with
  | Ok ({ payload = Response.Error _; _ } as r) -> error_code r
  | Ok r -> Alcotest.failf "expected an error frame, got %s" (payload_tag r)
  | Error rej -> Alcotest.failf "undecodable frame: %s" rej.Api.message

let e2e_tests =
  [
    test "solve round-trips and the store stays warm across requests" (fun () ->
        let outcome =
          with_server (fun listen ->
              let c = ok "connect" (Client.connect listen) in
              let r1 = ok "first" (Client.request c (solve_req "e1" fig1)) in
              check_string "first" "sat" (payload_tag r1);
              let r2 = ok "second" (Client.request c (solve_req "e2" fig1)) in
              check_string "second" "sat" (payload_tag r2);
              check_bool "warm intern hits" true
                (r2.Response.obs.Response.intern_hits > 0);
              Client.close c)
        in
        match outcome with
        | Some o ->
            check_bool "served both" true (o.Server.served >= 2);
            check_int "nothing malformed" 0 o.Server.malformed
        | None -> Alcotest.fail "server thread reported no outcome");
    test "a malformed frame is answered and the connection survives" (fun () ->
        ignore
          (with_server (fun listen ->
               let c = ok "connect" (Client.connect listen) in
               ok "send" (Client.send_raw c "this is not json\n");
               (match Client.recv_line c with
               | Some line -> check_string "code" "malformed" (decode_error line)
               | None -> Alcotest.fail "connection closed on malformed frame");
               let r = ok "after" (Client.request c (req ~id:"ok" Request.Stats)) in
               check_string "still serving" "stats" (payload_tag r);
               Client.close c)));
    test "an oversized terminated frame is answered without dropping the line"
      (fun () ->
        ignore
          (with_server
             ~configure:(fun c -> { c with Server.max_frame_bytes = 256 })
             (fun listen ->
               let c = ok "connect" (Client.connect listen) in
               ok "send" (Client.send_raw c (String.make 1024 'a' ^ "\n"));
               (match Client.recv_line c with
               | Some line -> check_string "code" "too_large" (decode_error line)
               | None -> Alcotest.fail "connection closed on oversized frame");
               let r = ok "after" (Client.request c (req ~id:"ok" Request.Stats)) in
               check_string "still serving" "stats" (payload_tag r);
               Client.close c)));
    test "an unterminated overflow is answered and the connection is cut"
      (fun () ->
        ignore
          (with_server
             ~configure:(fun c -> { c with Server.max_frame_bytes = 256 })
             (fun listen ->
               let c = ok "connect" (Client.connect listen) in
               (* no newline: the frame can never complete, so the
                  server answers and cuts the connection *)
               ok "send" (Client.send_raw c (String.make 1024 'a'));
               (match Client.recv_line c with
               | Some line -> check_string "code" "too_large" (decode_error line)
               | None -> Alcotest.fail "no answer before the cut");
               check_bool "connection cut" true (Client.recv_line c = None);
               Client.close c;
               (* and the daemon is still there for the next client *)
               let c2 = ok "reconnect" (Client.connect listen) in
               let r = ok "after" (Client.request c2 (req ~id:"ok" Request.Stats)) in
               check_string "still serving" "stats" (payload_tag r);
               Client.close c2)));
    test "a mid-request disconnect leaves the daemon serving" (fun () ->
        let outcome =
          with_server (fun listen ->
              let c1 = ok "connect" (Client.connect listen) in
              ok "send"
                (Client.send_raw c1
                   (Api.encode_request (solve_req "dropped" fig1) ^ "\n"));
              Client.close c1;
              let c2 = ok "reconnect" (Client.connect listen) in
              let r = ok "solve" (Client.request c2 (solve_req "after" fig1)) in
              check_string "still solving" "sat" (payload_tag r);
              Client.close c2)
        in
        match outcome with
        | Some o -> check_bool "both solves served" true (o.Server.served >= 2)
        | None -> Alcotest.fail "server thread reported no outcome");
    test "a per-request state budget is enforced in the worker" (fun () ->
        ignore
          (with_server (fun listen ->
               let c = ok "connect" (Client.connect listen) in
               let r =
                 ok "solve"
                   (Client.request c (solve_req ~budget_states:1 "tiny" fig1))
               in
               check_string "code" "budget_exceeded" (error_code r);
               Client.close c)));
    test "the metrics endpoint speaks Prometheus text" (fun () ->
        ignore
          (with_server (fun listen ->
               let c = ok "connect" (Client.connect listen) in
               let r = ok "solve" (Client.request c (solve_req "m1" fig1)) in
               check_string "solve" "sat" (payload_tag r);
               Client.close c;
               let body = ok "scrape" (Client.scrape listen) in
               check_contains "type header" body "# TYPE";
               check_contains "serve counters" body "serve_requests";
               check_contains "store counters" body "store_intern_")));
    test "shutdown reports lifetime totals" (fun () ->
        let outcome =
          with_server (fun listen ->
              let c = ok "connect" (Client.connect listen) in
              let _ = ok "solve" (Client.request c (solve_req "s" fig1)) in
              ok "send" (Client.send_raw c "garbage\n");
              ignore (Client.recv_line c);
              let r = ok "shutdown" (Client.request c (req ~id:"sd" Request.Shutdown)) in
              (match r.Response.payload with
              | Response.Shutdown_ack { drained } -> check_int "drained" 0 drained
              | p -> Alcotest.failf "expected shutdown_ack, got %s" (Response.payload_name p));
              Client.close c)
        in
        match outcome with
        | Some o ->
            check_bool "served" true (o.Server.served >= 2);
            check_int "malformed" 1 o.Server.malformed
        | None -> Alcotest.fail "server thread reported no outcome");
  ]

let listen_tests =
  [
    test "listen_of_string parses every spelling" (fun () ->
        (match Server.listen_of_string "unix:/tmp/x.sock" with
        | Ok (Server.Unix_socket "/tmp/x.sock") -> ()
        | _ -> Alcotest.fail "unix: scheme");
        (match Server.listen_of_string "tcp:127.0.0.1:9000" with
        | Ok (Server.Tcp ("127.0.0.1", 9000)) -> ()
        | _ -> Alcotest.fail "tcp: scheme");
        (match Server.listen_of_string "/tmp/y.sock" with
        | Ok (Server.Unix_socket "/tmp/y.sock") -> ()
        | _ -> Alcotest.fail "bare path");
        match Server.listen_of_string "tcp:noport" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "tcp without a port should not parse");
  ]

let suite =
  [
    ("serve:admission", admission_tests);
    ("serve:metrics-text", metrics_tests);
    ("serve:handler", handler_tests);
    ("serve:e2e", e2e_tests @ listen_tests);
  ]
