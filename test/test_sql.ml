open Helpers
module Token = Sql.Token
module Lexer = Sql.Lexer
module Ast = Sql.Ast
module Parser = Sql.Parser
module Analysis = Sql.Analysis

let lexer_tests =
  [
    test "keywords are case-insensitive" (fun () ->
        match Lexer.tokenize_exn "select FROM Where" with
        | [ Token.Kw "SELECT"; Token.Kw "FROM"; Token.Kw "WHERE" ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    test "string literal with '' escape" (fun () ->
        match Lexer.tokenize_exn "'o''brien'" with
        | [ Token.Str "o'brien" ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    test "line comment swallows the tail" (fun () ->
        match Lexer.tokenize_exn "SELECT -- junk ' OR\n1" with
        | [ Token.Kw "SELECT"; Token.Int 1 ] -> ()
        | _ -> Alcotest.fail "comment not stripped");
    test "block comment" (fun () ->
        match Lexer.tokenize_exn "1 /* x 'y' */ 2" with
        | [ Token.Int 1; Token.Int 2 ] -> ()
        | _ -> Alcotest.fail "unexpected tokens");
    test "operators" (fun () ->
        match Lexer.tokenize_exn "= <> <= >= < >" with
        | [ Token.Op "="; Token.Op "<>"; Token.Op "<="; Token.Op ">=";
            Token.Op "<"; Token.Op ">" ] ->
            ()
        | _ -> Alcotest.fail "unexpected tokens");
    test "errors" (fun () ->
        List.iter
          (fun src ->
            match Lexer.tokenize src with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected lex error: %s" src)
          [ "'unterminated"; "/* unterminated"; "se?ect" ]);
  ]

let parse = Parser.parse_exn

let parser_tests =
  [
    test "simple select" (fun () ->
        match parse "SELECT * FROM news WHERE newsid = 7" with
        | [ Ast.Select [ { columns = Star; table = "news"; where = Some _; _ } ] ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "column list, order by, limit" (fun () ->
        match parse "SELECT a, b FROM t ORDER BY a DESC, b LIMIT 10" with
        | [ Ast.Select [ { columns = Columns [ "a"; "b" ];
                           order_by = [ ("a", true); ("b", false) ];
                           limit = Some 10; _ } ] ] ->
            ()
        | _ -> Alcotest.fail "unexpected parse");
    test "where precedence: OR of ANDs" (fun () ->
        match parse "SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3" with
        | [ Ast.Select [ { where = Some (Ast.Or (Ast.And _, Ast.Cmp _)); _ } ] ] -> ()
        | _ -> Alcotest.fail "unexpected precedence");
    test "insert / update / delete / drop" (fun () ->
        check_int "kinds" 4
          (List.length
             (parse
                "INSERT INTO t (a, b) VALUES (1, 'x'); UPDATE t SET a = 2 WHERE \
                 b = 3; DELETE FROM t WHERE a = 1; DROP TABLE t")));
    test "union chain" (fun () ->
        match parse "SELECT a FROM t UNION SELECT b FROM u" with
        | [ Ast.Select [ _; _ ] ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "stacked statements" (fun () ->
        check_int "two" 2
          (List.length (parse "SELECT * FROM t; DROP TABLE t")));
    test "well_formed" (fun () ->
        check_bool "good" true (Parser.well_formed "SELECT * FROM t");
        check_bool "bad" false (Parser.well_formed "SELECT * FROM t WHERE id = nid_'0");
        check_bool "unbalanced quote" false
          (Parser.well_formed "SELECT * FROM t WHERE a = '"));
    test "round trip through the printer" (fun () ->
        List.iter
          (fun src ->
            let printed = Fmt.str "%a" Ast.pp_stmt (List.hd (parse src)) in
            check_bool src true (parse printed = parse src))
          [
            "SELECT * FROM t WHERE a = 1 OR b = 'x'";
            "INSERT INTO t (a) VALUES (1)";
            "UPDATE t SET a = 1, b = 'y' WHERE NOT c = 2";
            "DELETE FROM t WHERE a IN (1, 2, 3)";
            "SELECT a FROM t UNION SELECT b FROM u";
          ]);
  ]

let analysis_tests =
  let where src =
    match parse ("SELECT * FROM t WHERE " ^ src) with
    | [ Ast.Select [ { where = Some w; _ } ] ] -> w
    | _ -> Alcotest.fail "setup"
  in
  [
    test "truth of literal comparisons" (fun () ->
        check_bool "1=1" true (Analysis.truth_of (where "1 = 1") = Analysis.Tautology);
        check_bool "1=2" true (Analysis.truth_of (where "1 = 2") = Analysis.Contradiction);
        check_bool "'a'='a'" true
          (Analysis.truth_of (where "'a' = 'a'") = Analysis.Tautology);
        check_bool "col" true (Analysis.truth_of (where "a = 1") = Analysis.Unknown));
    test "kleene connectives" (fun () ->
        check_bool "x OR 1=1" true
          (Analysis.truth_of (where "a = 1 OR 1 = 1") = Analysis.Tautology);
        check_bool "x AND 1=2" true
          (Analysis.truth_of (where "a = 1 AND 1 = 2") = Analysis.Contradiction);
        check_bool "NOT 1=2" true
          (Analysis.truth_of (where "NOT 1 = 2") = Analysis.Tautology);
        check_bool "x AND 1=1" true
          (Analysis.truth_of (where "a = 1 AND 1 = 1") = Analysis.Unknown));
    test "tautological where detection" (fun () ->
        check_bool "classic" true
          (Analysis.has_tautological_where
             (List.hd (parse "SELECT * FROM t WHERE id = '' OR 1 = 1")));
        check_bool "honest" false
          (Analysis.has_tautological_where
             (List.hd (parse "SELECT * FROM t WHERE id = 7"))));
    test "injection verdicts" (fun () ->
        let intended = "SELECT * FROM news WHERE newsid = nid_7" in
        let check_reason actual expected =
          match Analysis.compare_queries ~intended ~actual with
          | Some r -> check_string actual expected (Fmt.str "%a" Analysis.pp_reason r)
          | None -> Alcotest.failf "expected injection for %s" actual
        in
        check_reason "SELECT * FROM news WHERE newsid = nid_7; DROP TABLE news"
          "1 stacked statement(s) appended";
        check_reason "SELECT * FROM news WHERE newsid = '' OR 1 = 1"
          "WHERE clause became a tautology";
        check_reason "SELECT * FROM news WHERE x = 1 UNION SELECT pw FROM users"
          "UNION branch injected";
        check_reason "SELECT * FROM news WHERE newsid = nid_'0"
          "query no longer parses";
        check_reason "DROP TABLE news" "statement kind changed: SELECT → DROP");
    test "honest literal change is not an injection" (fun () ->
        check_bool "same structure" false
          (Analysis.is_injection
             ~intended:"SELECT * FROM news WHERE newsid = 7"
             ~actual:"SELECT * FROM news WHERE newsid = 42"));
    test "table change is flagged" (fun () ->
        check_bool "flag" true
          (Analysis.is_injection
             ~intended:"DELETE FROM sessions WHERE a = 1"
             ~actual:"DELETE FROM users WHERE a = 1"));
  ]

(* End-to-end: symbolic execution recovers the intended query (by
   solving the path without the attack constraint) and the structural
   criterion classifies the subversion. *)
let integration_tests =
  let attack = Webapp.Attack.contains_quote in
  let run_both program =
    match (Webapp.Symexec.analyze ~attack program).Webapp.Symexec.candidates with
    | [ q ] -> (
        match
          ( (Webapp.Symexec.solve q).Webapp.Symexec.assignment,
            Webapp.Symexec.benign_inputs q )
        with
        | Some exploit_a, Some benign_a ->
            let fill inputs =
              inputs
              @ List.filter_map
                  (fun i ->
                    if List.mem_assoc i inputs then None else Some (i, "a"))
                  (Webapp.Ast.inputs program)
            in
            let exploit = fill (Webapp.Symexec.exploit_inputs q exploit_a) in
            let benign = fill (Webapp.Symexec.exploit_inputs q benign_a) in
            let actual = List.hd (Webapp.Eval.queries program ~inputs:exploit) in
            let intended = List.hd (Webapp.Eval.queries program ~inputs:benign) in
            (intended, actual)
        | _ -> Alcotest.fail "expected exploit and benign inputs")
    | _ -> Alcotest.fail "expected one candidate"
  in
  [
    test "utopia exploit breaks the query's structure" (fun () ->
        let program =
          Webapp.Lang_parser.parse_exn
            {|$newsid = input("posted_newsid");
              if (!preg_match(/[\d]+$/, $newsid)) { exit; }
              $newsid = "nid_" . $newsid;
              query("SELECT * FROM news WHERE newsid=" . $newsid);|}
        in
        let intended, actual = run_both program in
        check_bool "intended parses" true (Parser.well_formed intended);
        check_bool "structural injection" true
          (Analysis.is_injection ~intended ~actual));
    test "quoted sink: regex fires but structure can survive" (fun () ->
        (* the payload lands inside a string literal: the quote
           approximation is conservative, the structural check
           refines it *)
        let program =
          Webapp.Lang_parser.parse_exn
            {|$id = input("id");
              if (!preg_match(/^[a-z0-9 =']{1,8}$/, $id)) { exit; }
              query("SELECT * FROM t WHERE a = '" . $id . "'");|}
        in
        match (Webapp.Symexec.analyze ~attack program).Webapp.Symexec.candidates with
        | [ q ] -> (
            match (Webapp.Symexec.solve q).Webapp.Symexec.assignment with
            | None -> Alcotest.fail "regex-level exploit expected"
            | Some _ -> () (* the refinement story is exercised in cram *))
        | _ -> Alcotest.fail "expected one candidate");
    test "benign inputs of the fixed program still exist" (fun () ->
        (* the fixed filter has no exploit, but the benign system is
           satisfiable: honest requests still reach the sink *)
        let program =
          Webapp.Lang_parser.parse_exn
            {|$newsid = input("posted_newsid");
              if (!preg_match(/^[\d]+$/, $newsid)) { exit; }
              query("SELECT * FROM news WHERE newsid=" . $newsid);|}
        in
        match (Webapp.Symexec.analyze ~attack program).Webapp.Symexec.candidates with
        | [ q ] ->
            check_bool "no exploit" true
              ((Webapp.Symexec.solve q).Webapp.Symexec.assignment = None);
            check_bool "benign exists" true (Webapp.Symexec.benign_inputs q <> None)
        | _ -> Alcotest.fail "expected one candidate");
  ]

let suite =
  [
    ("sql:lexer", lexer_tests);
    ("sql:parser", parser_tests);
    ("sql:analysis", analysis_tests);
    ("sql:integration", integration_tests);
  ]
