(* The interned language store: semantics preservation against the
   reference oracles, LRU/memo mechanics, disabled-mode passthrough,
   and two end-to-end tests showing the cache is load-bearing for the
   solver and the symbolic executor. *)

open Helpers
module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Lang = Automata.Lang
module Store = Automata.Store
module Metrics = Telemetry.Metrics

(* Tests below toggle global store state; always restore. *)
let with_store_reset f =
  Fun.protect
    ~finally:(fun () ->
      Store.set_enabled true;
      Store.set_capacity 4096;
      Store.set_memo_min_states 4;
      Store.set_memo_max_states 256;
      Store.set_auto_gate true;
      Store.set_gate_thresholds ~min_samples:512 ~trip_saved_ns:5_000_000 ();
      Store.clear ())
    f

let counter_total snap name =
  List.fold_left
    (fun acc (n, _, v) -> if n = name then acc + v else acc)
    0
    (Metrics.Snapshot.counters snap)

let nfa_pair = QCheck2.Gen.pair nfa_gen nfa_gen

let prop_tests =
  [
    qtest ~count:150 "interning preserves the language" nfa_gen (fun m ->
        Lang.equal_reference m (Store.nfa (Store.intern m)));
    qtest ~count:150 "equal handle ids imply equal languages" nfa_pair
      (fun (m1, m2) ->
        Store.id (Store.intern m1) <> Store.id (Store.intern m2)
        || Lang.equal_reference m1 m2);
    qtest ~count:150 "store subset/equal agree with the references" nfa_pair
      (fun (m1, m2) ->
        let h1 = Store.intern m1 and h2 = Store.intern m2 in
        Store.subset h1 h2 = Lang.subset_reference m1 m2
        && Store.equal h1 h2 = Lang.equal_reference m1 m2);
    qtest ~count:150 "store counterexamples are valid" nfa_pair
      (fun (m1, m2) ->
        let h1 = Store.intern m1 and h2 = Store.intern m2 in
        match Store.counterexample h1 h2 with
        | None -> Lang.subset_reference m1 m2
        | Some w -> Nfa.accepts m1 w && not (Nfa.accepts m2 w));
    qtest ~count:100 "cached binary ops match the raw constructions"
      nfa_pair
      (fun (m1, m2) ->
        let h1 = Store.intern m1 and h2 = Store.intern m2 in
        Lang.equal_reference
          (Store.nfa (Store.inter_lang h1 h2))
          (Ops.inter_lang m1 m2)
        && Lang.equal_reference
             (Store.nfa (Store.concat_lang h1 h2))
             (Ops.concat_lang m1 m2)
        && Lang.equal_reference
             (Store.nfa (Store.union_lang h1 h2))
             (Ops.union_lang m1 m2));
    qtest ~count:150 "memoized unary ops match their definitions" nfa_gen
      (fun m ->
        let h = Store.intern m in
        Store.is_empty h = Nfa.is_empty_lang_reference m
        && Lang.equal_reference (Store.minimized h) m
        && Lang.equal_reference (Automata.Dfa.to_nfa (Store.min_dfa h)) m);
  ]

let memo_tests =
  [
    test "find_or_compute computes once per key" (fun () ->
        with_store_reset @@ fun () ->
        let memo : int Store.Memo.t = Store.Memo.create ~op:"test.once" in
        let runs = ref 0 in
        let get k =
          Store.Memo.find_or_compute memo ~key:[ k ] (fun () ->
              incr runs;
              k * 7)
        in
        check_int "first" 21 (get 3);
        check_int "second" 21 (get 3);
        check_int "other key" 35 (get 5);
        check_int "computed twice total" 2 !runs);
    test "intern hits on a re-built machine" (fun () ->
        with_store_reset @@ fun () ->
        let mk () = Dprle.System.const_of_regex "ab(c|d)*" in
        let h1 = Store.intern (mk ()) in
        let h2 = Store.intern (mk ()) in
        check_int "same id" (Store.id h1) (Store.id h2));
    test "interning ignores state numbering and dead states" (fun () ->
        with_store_reset @@ fun () ->
        (* same machine built twice: once plainly, once with junk
           states and a different allocation order — big enough to be
           above the size gate, so both take the keyed path *)
        let chain b s f =
          let m1 = Nfa.Builder.add_state b in
          let m2 = Nfa.Builder.add_state b in
          Nfa.Builder.add_trans b s (Charset.singleton 'x') m1;
          Nfa.Builder.add_trans b m1 (Charset.singleton 'y') m2;
          Nfa.Builder.add_trans b m2 (Charset.singleton 'z') f
        in
        let plain =
          let b = Nfa.Builder.create () in
          let s = Nfa.Builder.add_state b in
          let f = Nfa.Builder.add_state b in
          chain b s f;
          Nfa.Builder.finish b ~start:s ~final:f
        in
        let noisy =
          let b = Nfa.Builder.create () in
          let junk = Nfa.Builder.add_states b 3 in
          let f = Nfa.Builder.add_state b in
          let s = Nfa.Builder.add_state b in
          chain b s f;
          Nfa.Builder.add_trans b junk (Charset.singleton 'q') (junk + 1);
          Nfa.Builder.finish b ~start:s ~final:f
        in
        check_int "same id" (Store.id (Store.intern plain))
          (Store.id (Store.intern noisy)));
    test "LRU eviction under a small capacity" (fun () ->
        with_store_reset @@ fun () ->
        Store.set_capacity 16;
        let memo : int Store.Memo.t = Store.Memo.create ~op:"test.lru" in
        let runs = ref 0 in
        let get k =
          Store.Memo.find_or_compute memo ~key:[ k ] (fun () ->
              incr runs;
              k)
        in
        let before = Metrics.Snapshot.of_default () in
        for k = 1 to 40 do
          ignore (get k)
        done;
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_int "all computed" 40 !runs;
        check_bool "evictions recorded" true
          (counter_total diff "store.opcache.evict" > 0);
        (* a hot key kept hot survives; ancient keys were dropped *)
        ignore (get 40);
        check_int "recent key cached" 40 !runs;
        ignore (get 1);
        check_int "old key recomputed" 41 !runs);
    test "disabled store is a passthrough" (fun () ->
        with_store_reset @@ fun () ->
        Store.set_enabled false;
        let m = Dprle.System.const_of_regex "a+" in
        let h1 = Store.intern m and h2 = Store.intern m in
        check_bool "fresh handles" true (Store.id h1 <> Store.id h2);
        check_bool "same machine back" true (Store.nfa h1 == m);
        let memo : int Store.Memo.t = Store.Memo.create ~op:"test.disabled" in
        let runs = ref 0 in
        let get () =
          Store.Memo.find_or_compute memo ~key:[ 1 ] (fun () ->
              incr runs;
              0)
        in
        ignore (get ());
        ignore (get ());
        check_int "recomputed every call" 2 !runs);
  ]

(* ------------------------------------------------------------------ *)
(* Cost gate *)

let timer_count snap name labels =
  match Metrics.Snapshot.timer_stat ~labels snap name with
  | Some s -> s.Metrics.Snapshot.count
  | None -> 0

let gate_tests =
  [
    test "size gate: tiny machines are not keyed" (fun () ->
        with_store_reset @@ fun () ->
        let mk () = Nfa.of_word "a" in
        let before = Metrics.Snapshot.of_default () in
        let h1 = Store.intern (mk ()) and h2 = Store.intern (mk ()) in
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_bool "fresh unshared handles" true (Store.id h1 <> Store.id h2);
        check_bool "skips counted" true
          (Metrics.Snapshot.counter_value
             ~labels:[ ("op", "intern") ]
             diff "store.gate.skip"
          >= 2);
        check_int "no canonical key paid" 0
          (timer_count diff "store.ledger.key" [ ("op", "intern") ]);
        (* threshold 0 turns the size gate off: same machine now shares *)
        Store.set_memo_min_states 0;
        let h3 = Store.intern (mk ()) and h4 = Store.intern (mk ()) in
        check_int "shared once ungated" (Store.id h3) (Store.id h4));
    test "size gate: huge machines are not keyed either" (fun () ->
        with_store_reset @@ fun () ->
        (* Above the ceiling the canonical key costs more than any
           memo hit can return; the machine gets a fresh handle with
           no key paid, but the physeq MRU still shares repeats of
           the SAME physical machine. *)
        Store.set_memo_max_states 8;
        let m = Nfa.of_word "abcdefghijklmnop" (* > 8 states *) in
        let before = Metrics.Snapshot.of_default () in
        let h1 = Store.intern m in
        let h2 = Store.intern m in
        let h3 = Store.intern (Nfa.of_word "abcdefghijklmnop") in
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_int "no canonical key paid" 0
          (timer_count diff "store.ledger.key" [ ("op", "intern") ]);
        check_int "physically equal repeat shares" (Store.id h1) (Store.id h2);
        check_bool "structurally equal copy does not" true
          (Store.id h1 <> Store.id h3);
        check_bool "skip counted" true
          (Metrics.Snapshot.counter_value
             ~labels:[ ("op", "intern") ]
             diff "store.gate.skip"
          >= 1);
        (* raising the ceiling back re-enables keyed sharing *)
        Store.set_memo_max_states 256;
        let h4 = Store.intern (Nfa.of_word "abcdefghijklmnop") in
        let h5 = Store.intern (Nfa.of_word "abcdefghijklmnop") in
        check_int "shared once under the ceiling" (Store.id h4) (Store.id h5));
    test "of_word and top serve repeats without re-keying" (fun () ->
        with_store_reset @@ fun () ->
        let h1 = Store.of_word "engine_word" in
        let before = Metrics.Snapshot.of_default () in
        let h2 = Store.of_word "engine_word" in
        let t1 = Store.top () and t2 = Store.top () in
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_int "same word handle" (Store.id h1) (Store.id h2);
        check_int "same top handle" (Store.id t1) (Store.id t2);
        (* the word repeat is a string-hash hit, and Σ* (one state) is
           below the size gate: no canonical key on either path *)
        check_int "no keys paid" 0
          (timer_count diff "store.ledger.key" [ ("op", "intern") ]));
    test "compacted is memoized and idempotent" (fun () ->
        with_store_reset @@ fun () ->
        let h = Store.intern (Dprle.System.const_of_regex "ab(c|d)*e") in
        let c1 = Store.compacted h in
        let before = Metrics.Snapshot.of_default () in
        let c2 = Store.compacted h in
        let c3 = Store.compacted c1 in
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_int "slot hit" (Store.id c1) (Store.id c2);
        check_int "fixed point" (Store.id c1) (Store.id c3);
        check_int "no re-keying on repeats" 0
          (timer_count diff "store.ledger.key" [ ("op", "intern") ]));
    test "physically equal machines intern without a second key" (fun () ->
        with_store_reset @@ fun () ->
        let m = Dprle.System.const_of_regex "xy(z|w)*" in
        let h1 = Store.intern m in
        let before = Metrics.Snapshot.of_default () in
        let h2 = Store.intern m in
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_int "same handle" (Store.id h1) (Store.id h2);
        check_int "pointer hit pays no key" 0
          (timer_count diff "store.ledger.key" [ ("op", "intern") ]);
        check_int "counted as an intern hit" 1
          (Metrics.Snapshot.counter_value diff "store.intern.hit"));
    test "auto gate trips a parasitic op memo" (fun () ->
        with_store_reset @@ fun () ->
        (* all-miss traffic (never-repeating keys) has zero savings, so
           with the hysteresis floored the gate must trip and stop
           paying for lookups *)
        Store.set_gate_thresholds ~min_samples:64 ~trip_saved_ns:0 ();
        let memo : int Store.Memo.t = Store.Memo.create ~op:"test.parasite" in
        let runs = ref 0 in
        let get k =
          Store.Memo.find_or_compute memo ~key:[ k ] (fun () ->
              incr runs;
              k)
        in
        let before = Metrics.Snapshot.of_default () in
        for k = 1 to 128 do
          ignore (get k)
        done;
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_bool "gate tripped" true
          (Metrics.Snapshot.counter_value
             ~labels:[ ("op", "test.parasite") ]
             diff "store.gate.tripped"
          > 0);
        (* disabled: repeats of a cached key recompute from now on *)
        let r = !runs in
        ignore (get 1);
        check_int "memo no longer consulted" (r + 1) !runs;
        (* clear resets the accumulators and re-arms the gate *)
        Store.clear ();
        let r = !runs in
        ignore (get 1);
        ignore (get 1);
        check_int "re-armed after clear" (r + 1) !runs);
    test "auto gate off: parasitic memo keeps memoizing" (fun () ->
        with_store_reset @@ fun () ->
        Store.set_gate_thresholds ~min_samples:64 ~trip_saved_ns:0 ();
        Store.set_auto_gate false;
        let memo : int Store.Memo.t = Store.Memo.create ~op:"test.ablation" in
        let runs = ref 0 in
        let get k =
          Store.Memo.find_or_compute memo ~key:[ k ] (fun () ->
              incr runs;
              k)
        in
        for k = 1 to 128 do
          ignore (get k)
        done;
        let r = !runs in
        ignore (get 1);
        check_int "still cached" r !runs);
  ]

(* ------------------------------------------------------------------ *)
(* Load-bearing end to end *)

let fig1_system () =
  Dprle.System.make_exn
    ~consts:
      [
        ("filter", Dprle.System.const_of_pattern "/[\\d]+$/");
        ("prefix", Dprle.System.const_of_word "nid_");
        ("unsafe", Dprle.System.const_of_pattern "/'/");
      ]
    ~constraints:
      [
        { Dprle.System.lhs = Var "v1"; rhs = "filter" };
        { Dprle.System.lhs = Concat (Const "prefix", Var "v1"); rhs = "unsafe" };
      ]

let utopia_program =
  {|
$newsid = input("posted_newsid");
if (!preg_match(/[\d]+$/, $newsid)) {
  echo "Invalid article news ID.";
  exit;
}
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
|}

let endtoend_tests =
  [
    test "repeated solves hit the op-cache" (fun () ->
        with_store_reset @@ fun () ->
        let solve () =
          match run_solver (fig1_system ()) with
          | Dprle.Solver.Sat (_ :: _) -> ()
          | _ -> Alcotest.fail "expected sat"
        in
        solve ();
        let before = Metrics.Snapshot.of_default () in
        solve ();
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_bool "second solve hits" true
          (counter_total diff "store.opcache.hit" > 0));
    test "symbolic execution runs warm by default" (fun () ->
        with_store_reset @@ fun () ->
        let program = Webapp.Lang_parser.parse_exn utopia_program in
        let before = Metrics.Snapshot.of_default () in
        (match
           Webapp.Symexec.first_exploit
             ~attack:Webapp.Attack.contains_quote program
         with
        | Some inputs ->
            check_bool "exploit constrains the input" true
              (List.mem_assoc "posted_newsid" inputs)
        | None -> Alcotest.fail "expected an exploit");
        let diff =
          Metrics.Snapshot.diff ~after:(Metrics.Snapshot.of_default ()) ~before
        in
        check_bool "op-cache hits during symexec" true
          (counter_total diff "store.opcache.hit" > 0);
        check_bool "intern hits during symexec" true
          (counter_total diff "store.intern.hit" > 0));
    test "--no-cache semantics: disabled solve agrees with cached" (fun () ->
        with_store_reset @@ fun () ->
        let run () =
          match run_solver (fig1_system ()) with
          | Dprle.Solver.Sat assignments ->
              List.map Dprle.Assignment.witness assignments
          | Dprle.Solver.Unsat r ->
              Alcotest.failf "unsat: %s"
                (Dprle.Solver.unsat_message r.Dprle.Solver.reason)
        in
        let cached = run () in
        Store.set_enabled false;
        let uncached = run () in
        check_bool "same witnesses" true (cached = uncached));
  ]

let suite =
  [
    ("store:props", prop_tests);
    ("store:memo", memo_tests);
    ("store:gate", gate_tests);
    ("store:endtoend", endtoend_tests);
  ]
