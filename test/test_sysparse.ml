open Helpers
module Nfa = Automata.Nfa
module Sysparse = Dprle.Sysparse
module System = Dprle.System
module Solver = Dprle.Solver
module Assignment = Dprle.Assignment

let fig1_source =
  {|
# SQL-injection example (Fig. 1 / section 2 of the paper)
let filter = /[\d]+$/;        # the faulty check on line 2
let prefix = "nid_";          # concatenated on line 6
let unsafe = /'/;             # queries containing a quote

v1 <= filter;
prefix . v1 <= unsafe;
|}

let unit_tests =
  [
    test "parses the paper's example file" (fun () ->
        let s = Sysparse.parse_exn fig1_source in
        check_int "constraints" 2 (System.size s);
        Alcotest.(check (list string)) "vars" [ "v1" ] (System.variables s);
        check_int "consts" 3 (List.length (System.constants s)));
    test "parsed system solves to the exploit language" (fun () ->
        let s = Sysparse.parse_exn fig1_source in
        match run_solver s with
        | Solver.Sat [ a ] ->
            let v1 = Assignment.find a "v1" in
            check_bool "attack" true (Nfa.accepts v1 "' OR 1=1 ; DROP news --9");
            check_bool "benign" false (Nfa.accepts v1 "17")
        | Solver.Sat sols ->
            Alcotest.failf "expected 1 solution, got %d" (List.length sols)
        | Solver.Unsat r -> Alcotest.failf "unsat: %s" (Solver.unsat_message r.Solver.reason));
    test "string escapes" (fun () ->
        let s = Sysparse.parse_exn {|let c = "a\n\t\"\\";  v <= c;|} in
        check_bool "lang" true
          (Automata.Lang.equal (System.const_lang s "c") (Nfa.of_word "a\n\t\"\\")));
    test "escaped slash in pattern" (fun () ->
        let s = Sysparse.parse_exn {|let c = /^a\/b$/; v <= c;|} in
        check_bool "a/b" true (Nfa.accepts (System.const_lang s "c") "a/b"));
    test "anchored vs unanchored constants" (fun () ->
        let s = Sysparse.parse_exn {|let exact = /^ab$/; let loose = /ab/; v <= exact; w <= loose;|} in
        check_bool "exact" false (Nfa.accepts (System.const_lang s "exact") "xaby");
        check_bool "loose" true (Nfa.accepts (System.const_lang s "loose") "xaby"));
    test "multi-operand concatenation" (fun () ->
        let s = Sysparse.parse_exn {|let c = /^abc$/; x . y . z <= c;|} in
        match System.constraints s with
        | [ { lhs = Concat (Var "x", Concat (Var "y", Var "z")); rhs = "c" } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "errors carry positions" (fun () ->
        List.iter
          (fun (src, expect_line) ->
            match Sysparse.parse src with
            | Error { line; _ } -> check_int src expect_line line
            | Ok _ -> Alcotest.failf "expected error for %s" src)
          [
            ("let = /a/;", 1);
            ("v <= undefined_const;", 1);
            ("let c = /a/;\nv < c;", 2);
            ("let c = /a/;\nlet c = /b/;", 2);
            ("let c = \"unterminated", 1);
            ("let c = /a(/; v <= c;", 1);
          ]);
    test "rhs must be a constant" (fun () ->
        match Sysparse.parse "x <= y;" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "variable rhs accepted");
    test "union syntax with grouping" (fun () ->
        let s =
          Sysparse.parse_exn {|let c = /^ab*$/; (x | y) . z <= c; x | y <= c;|}
        in
        match System.constraints s with
        | [
         { lhs = Concat (Union (Var "x", Var "y"), Var "z"); rhs = "c" };
         { lhs = Union (Var "x", Var "y"); rhs = "c" };
        ] ->
            ()
        | _ -> Alcotest.fail "unexpected parse");
    test "union system solves" (fun () ->
        let s = Sysparse.parse_exn {|let c = /^a{1,2}$/; (x | y) <= c;|} in
        match run_solver s with
        | Solver.Sat [ a ] ->
            check_bool "x" true
              (Automata.Lang.equal (Assignment.find a "x")
                 (Dprle.System.const_lang s "c"))
        | _ -> Alcotest.fail "expected one solution");
    test "unbalanced parens rejected" (fun () ->
        List.iter
          (fun src ->
            match Sysparse.parse src with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected error: %s" src)
          [ "let c = /a/; (x . y <= c;"; "let c = /a/; x | <= c;" ]);
  ]

let suite = [ ("sysparse:unit", unit_tests) ]
