(* Unit tests for the telemetry subsystem: span-tree shape and
   duration bookkeeping under a deterministic clock, counter/histogram
   labeling and snapshot diffs, and the diff-based Automata.Stats
   scoping that makes nested solve reports independent. *)

open Helpers
module Span = Telemetry.Span
module Metrics = Telemetry.Metrics
module Json = Telemetry.Json
module Stats = Automata.Stats

(* A clock that advances 1 ms per reading makes every span's duration
   a known multiple of the readings taken inside it. *)
let with_fake_clock f =
  let t = ref 0.0 in
  Telemetry.Clock.set_source (fun () ->
      t := !t +. 0.001;
      !t);
  Fun.protect ~finally:Telemetry.Clock.use_default_source f

let span_tests =
  [
    test "with_span is a passthrough when disabled" (fun () ->
        check_bool "disabled" false (Span.enabled ());
        let r = Span.with_span ~name:"ignored" (fun () -> 41 + 1) in
        check_int "result" 42 r;
        check_bool "still disabled" false (Span.enabled ()));
    test "collect builds the nested tree in execution order" (fun () ->
        with_fake_clock @@ fun () ->
        let result, root =
          Span.collect ~name:"root" (fun () ->
              let a =
                Span.with_span ~name:"a" (fun () ->
                    Span.with_span ~name:"a1" (fun () -> ());
                    "a-result")
              in
              Span.with_span ~name:"b" (fun () -> ());
              a)
        in
        check_string "result" "a-result" result;
        check_string "root name" "root" (Span.name root);
        check_int "two children" 2 (List.length (Span.children root));
        let a, b =
          match Span.children root with [ x; y ] -> (x, y) | _ -> assert false
        in
        check_string "first child" "a" (Span.name a);
        check_string "second child" "b" (Span.name b);
        check_int "grandchild" 1 (List.length (Span.children a));
        check_string "grandchild name" "a1"
          (Span.name (List.hd (Span.children a))));
    test "durations are non-negative and nest monotonically" (fun () ->
        with_fake_clock @@ fun () ->
        let (), root =
          Span.collect ~name:"root" (fun () ->
              Span.with_span ~name:"child" (fun () ->
                  Span.with_span ~name:"grandchild" (fun () -> ())))
        in
        let child = List.hd (Span.children root) in
        let grandchild = List.hd (Span.children child) in
        List.iter
          (fun s ->
            check_bool
              (Span.name s ^ " duration positive")
              true
              (Int64.compare (Span.duration_ns s) 0L > 0))
          [ root; child; grandchild ];
        check_bool "child within root" true
          (Int64.compare (Span.duration_ns child) (Span.duration_ns root) <= 0);
        check_bool "grandchild within child" true
          (Int64.compare (Span.duration_ns grandchild) (Span.duration_ns child)
          <= 0));
    test "attrs and add_attr land on the right span" (fun () ->
        let (), root =
          Span.collect ~name:"root" (fun () ->
              Span.with_span ~name:"phase" ~attrs:[ ("q", `Int 5) ] (fun () ->
                  Span.add_attr "cuts" (`Int 3));
              Span.add_attr "outcome" (`String "sat"))
        in
        let phase = List.hd (Span.children root) in
        check_bool "declared attr" true (List.mem ("q", `Int 5) (Span.attrs phase));
        check_bool "mid-phase attr" true
          (List.mem ("cuts", `Int 3) (Span.attrs phase));
        check_bool "root attr" true
          (List.mem ("outcome", `String "sat") (Span.attrs root)));
    test "an exception still closes the span stack" (fun () ->
        (try
           ignore
             (Span.collect ~name:"root" (fun () ->
                  Span.with_span ~name:"doomed" (fun () -> failwith "boom")))
         with Failure _ -> ());
        check_bool "tracing off again" false (Span.enabled ()));
    test "chrome export is one complete event per span" (fun () ->
        with_fake_clock @@ fun () ->
        let (), root =
          Span.collect ~name:"root" (fun () ->
              Span.with_span ~name:"inner" ~attrs:[ ("k", `String "v\"q") ]
                (fun () -> ()))
        in
        match Span.to_chrome_json root with
        | Json.Obj [ ("traceEvents", Json.List events); _ ] ->
            check_int "events" 2 (List.length events);
            let json = Span.to_chrome_string root in
            check_bool "escaped attr" true
              (let needle = {|"k":"v\"q"|} in
               let rec find i =
                 i + String.length needle <= String.length json
                 && (String.sub json i (String.length needle) = needle
                    || find (i + 1))
               in
               find 0)
        | _ -> Alcotest.fail "unexpected chrome JSON shape");
  ]

let metrics_tests =
  [
    test "counter labels address independent series" (fun () ->
        let r = Metrics.create_registry () in
        let c = Metrics.Counter.make ~registry:r "test.hits" in
        Metrics.Counter.incr c 1;
        Metrics.Counter.incr c ~labels:[ ("op", "concat") ] 2;
        Metrics.Counter.incr c ~labels:[ ("op", "product") ] 5;
        check_int "unlabeled" 1 (Metrics.Counter.value c);
        check_int "concat" 2 (Metrics.Counter.value c ~labels:[ ("op", "concat") ]);
        check_int "product" 5
          (Metrics.Counter.value c ~labels:[ ("op", "product") ]));
    test "label order does not matter" (fun () ->
        let r = Metrics.create_registry () in
        let c = Metrics.Counter.make ~registry:r "test.pairs" in
        Metrics.Counter.incr c ~labels:[ ("a", "1"); ("b", "2") ] 1;
        Metrics.Counter.incr c ~labels:[ ("b", "2"); ("a", "1") ] 1;
        check_int "same series" 2
          (Metrics.Counter.value c ~labels:[ ("a", "1"); ("b", "2") ]));
    test "same-name registration is idempotent, cross-kind is rejected"
      (fun () ->
        let r = Metrics.create_registry () in
        let c1 = Metrics.Counter.make ~registry:r "test.once" in
        let c2 = Metrics.Counter.make ~registry:r "test.once" in
        Metrics.Counter.incr c1 3;
        check_int "same underlying cell" 3 (Metrics.Counter.value c2);
        check_bool "kind clash raises" true
          (try
             ignore (Metrics.Histogram.make ~registry:r "test.once");
             false
           with Invalid_argument _ -> true));
    test "histogram buckets and labels" (fun () ->
        let r = Metrics.create_registry () in
        let h =
          Metrics.Histogram.make ~registry:r ~buckets:[| 1.; 10.; 100. |]
            "test.sizes"
        in
        List.iter
          (Metrics.Histogram.observe h ~labels:[ ("dir", "in") ])
          [ 0.5; 7.; 7.; 1000. ];
        Metrics.Histogram.observe h ~labels:[ ("dir", "out") ] 2.;
        let snap = Metrics.Snapshot.take r in
        let stat labels =
          match
            List.find_opt
              (fun (name, l, _) -> name = "test.sizes" && l = labels)
              (Metrics.Snapshot.histograms snap)
          with
          | Some (_, _, s) -> s
          | None -> Alcotest.fail "missing series"
        in
        let s_in = stat [ ("dir", "in") ] in
        check_int "in count" 4 s_in.Metrics.Snapshot.count;
        check_bool "in sum" true (abs_float (s_in.sum -. 1014.5) < 1e-9);
        check_int "le-1 bucket" 1 (List.assoc 1. s_in.buckets);
        check_int "le-10 bucket" 2 (List.assoc 10. s_in.buckets);
        check_int "le-100 bucket" 0 (List.assoc 100. s_in.buckets);
        check_int "overflow bucket" 1 (List.assoc Float.infinity s_in.buckets);
        check_int "out count" 1 (stat [ ("dir", "out") ]).count);
    test "snapshot diff isolates a region" (fun () ->
        let r = Metrics.create_registry () in
        let c = Metrics.Counter.make ~registry:r "test.work" in
        Metrics.Counter.incr c 100;
        let before = Metrics.Snapshot.take r in
        Metrics.Counter.incr c 7;
        let after = Metrics.Snapshot.take r in
        let d = Metrics.Snapshot.diff ~after ~before in
        check_int "scoped count" 7 (Metrics.Snapshot.counter_value d "test.work");
        check_int "absent counter reads zero" 0
          (Metrics.Snapshot.counter_value d "test.missing"));
    test "snapshot json is well-formed" (fun () ->
        let r = Metrics.create_registry () in
        let c = Metrics.Counter.make ~registry:r "test.json" in
        Metrics.Counter.incr c ~labels:[ ("k", "v") ] 1;
        match Metrics.Snapshot.to_json (Metrics.Snapshot.take r) with
        | Json.Obj
            [
              ("counters", Json.List [ _ ]);
              ("gauges", Json.List []);
              ("histograms", Json.List []);
              ("timers", Json.List []);
            ] ->
            ()
        | _ -> Alcotest.fail "unexpected snapshot JSON shape");
    test "histogram json keeps +Inf explicit and reports max" (fun () ->
        let r = Metrics.create_registry () in
        let h =
          Metrics.Histogram.make ~registry:r ~buckets:[| 1.; 10. |] "test.tail"
        in
        Metrics.Histogram.observe h 0.5;
        (* nothing lands past the last bound, yet the overflow bucket
           must still be visible so bench --diff can watch the tail *)
        let json = Metrics.Snapshot.to_json (Metrics.Snapshot.take r) in
        let s = Json.to_string json in
        check_bool "+Inf bucket present" true
          (let needle = {|"le":"+Inf"|} in
           let rec find i =
             i + String.length needle <= String.length s
             && (String.sub s i (String.length needle) = needle || find (i + 1))
           in
           find 0);
        let snap = Metrics.Snapshot.take r in
        match Metrics.Snapshot.histograms snap with
        | [ (_, _, stat) ] -> check_bool "max recorded" true (stat.max = 0.5)
        | _ -> Alcotest.fail "expected one histogram series");
  ]

let timer_tests =
  [
    test "timer records count, total, and nested self time" (fun () ->
        with_fake_clock @@ fun () ->
        let r = Metrics.create_registry () in
        let outer = Metrics.Timer.make ~registry:r "test.outer" in
        let inner = Metrics.Timer.make ~registry:r "test.inner" in
        Metrics.Timer.time outer (fun () ->
            Metrics.Timer.time inner (fun () -> ()));
        let snap = Metrics.Snapshot.take r in
        let stat name =
          match Metrics.Snapshot.timer_stat snap name with
          | Some s -> s
          | None -> Alcotest.fail ("missing timer " ^ name)
        in
        let o = stat "test.outer" and i = stat "test.inner" in
        check_int "outer count" 1 o.Metrics.Snapshot.count;
        check_int "inner count" 1 i.Metrics.Snapshot.count;
        (* fake clock steps 1 ms per reading: inner spans 1 reading gap
           (1 ms), outer spans 3 (3 ms), so outer self = 3 - 1 = 2 ms *)
        check_bool "inner total" true (i.total_ns = 1_000_000L);
        check_bool "outer total" true (o.total_ns = 3_000_000L);
        check_bool "outer self excludes inner" true (o.self_ns = 2_000_000L);
        check_bool "inner is a leaf" true (i.self_ns = i.total_ns);
        check_bool "outer max" true (o.max_ns = o.total_ns));
    test "observe_ns books as a leaf under the open frame" (fun () ->
        with_fake_clock @@ fun () ->
        let r = Metrics.create_registry () in
        let outer = Metrics.Timer.make ~registry:r "test.outer2" in
        let ledger = Metrics.Timer.make ~registry:r "test.ledger" in
        Metrics.Timer.time outer (fun () ->
            Metrics.Timer.observe_ns ledger 500_000L);
        let snap = Metrics.Snapshot.take r in
        let o = Option.get (Metrics.Snapshot.timer_stat snap "test.outer2") in
        let l = Option.get (Metrics.Snapshot.timer_stat snap "test.ledger") in
        check_bool "ledger self = total" true (l.self_ns = l.total_ns);
        check_bool "ledger charged to outer" true
          (o.self_ns = Int64.sub o.total_ns 500_000L));
    test "an exception still closes the timer" (fun () ->
        with_fake_clock @@ fun () ->
        let r = Metrics.create_registry () in
        let t = Metrics.Timer.make ~registry:r "test.doomed" in
        (try Metrics.Timer.time t (fun () -> failwith "boom")
         with Failure _ -> ());
        check_int "recorded anyway" 1 (Metrics.Timer.count t);
        (* the frame stack must be empty again: a fresh timer books
           fully as self time *)
        Metrics.Timer.time t (fun () -> ());
        check_int "stack recovered" 2 (Metrics.Timer.count t));
    test "disabling timing skips recording entirely" (fun () ->
        let r = Metrics.create_registry () in
        let t = Metrics.Timer.make ~registry:r "test.off" in
        Metrics.set_timing_enabled false;
        Fun.protect
          ~finally:(fun () -> Metrics.set_timing_enabled true)
          (fun () ->
            let v = Metrics.Timer.time t (fun () -> 42) in
            check_int "passthrough result" 42 v;
            Metrics.Timer.observe_ns t 1_000L;
            check_int "nothing recorded" 0 (Metrics.Timer.count t)));
    test "timer snapshots diff and absorb like counters" (fun () ->
        with_fake_clock @@ fun () ->
        let r = Metrics.create_registry () in
        let t = Metrics.Timer.make ~registry:r "test.add" in
        Metrics.Timer.time t (fun () -> ());
        let before = Metrics.Snapshot.take r in
        Metrics.Timer.time t ~labels:[ ("op", "x") ] (fun () -> ());
        Metrics.Timer.time t (fun () -> ());
        let d = Metrics.Snapshot.diff ~after:(Metrics.Snapshot.take r) ~before in
        let s = Option.get (Metrics.Snapshot.timer_stat d "test.add") in
        check_int "diffed count" 1 s.Metrics.Snapshot.count;
        let s' =
          Option.get
            (Metrics.Snapshot.timer_stat d ~labels:[ ("op", "x") ] "test.add")
        in
        check_int "new series passes through" 1 s'.Metrics.Snapshot.count;
        (* absorbing the diff into a fresh registry doubles nothing *)
        let r2 = Metrics.create_registry () in
        Metrics.Snapshot.absorb ~registry:r2 d;
        Metrics.Snapshot.absorb ~registry:r2 d;
        let s2 =
          Option.get
            (Metrics.Snapshot.timer_stat (Metrics.Snapshot.take r2) "test.add")
        in
        check_int "absorb adds counts" 2 s2.Metrics.Snapshot.count;
        check_bool "absorb adds totals" true
          (s2.total_ns = Int64.mul 2L s.total_ns));
    test "gauges set, add, and absorb by max" (fun () ->
        let r = Metrics.create_registry () in
        let g = Metrics.Gauge.make ~registry:r "test.depth" in
        Metrics.Gauge.set g 5;
        Metrics.Gauge.add g (-2);
        check_int "set+add" 3 (Metrics.Gauge.value g);
        let snap = Metrics.Snapshot.take r in
        let r2 = Metrics.create_registry () in
        let g2 = Metrics.Gauge.make ~registry:r2 "test.depth" in
        Metrics.Gauge.set g2 7;
        Metrics.Snapshot.absorb ~registry:r2 snap;
        check_int "absorb keeps max" 7 (Metrics.Gauge.value g2);
        Metrics.Gauge.set g2 1;
        Metrics.Snapshot.absorb ~registry:r2 snap;
        check_int "absorb raises to incoming" 3 (Metrics.Gauge.value g2));
  ]

(* The regression the registry shim exists for: a nested
   solve_with_report must not clobber an enclosing measurement, and
   back-to-back reports must count only their own work. *)
let fig1 =
  Dprle.Sysparse.parse_exn
    {| let filter = /[\d]+$/;
       let prefix = "nid_";
       let unsafe = /'/;
       v1 <= filter;
       prefix . v1 <= unsafe; |}

let stats_tests =
  [
    test "nested solve reports are independent" (fun () ->
        let g = Dprle.Depgraph.of_system fig1 in
        (* outer bracketing, with some construction work of its own *)
        Stats.reset ();
        Stats.visit_states 7;
        let _, inner = Result.get_ok (Dprle.Report.solve_with_report g) in
        let outer = Stats.snapshot () in
        check_bool "inner counted its solve" true (inner.automata.visited > 0);
        (* with reset-bracketed globals the nested report would zero
           the outer bracket's counts and report only the inner solve;
           diff-based scoping keeps the outer work (the 7 synthetic
           visits, plus the report's own census pass) on the books *)
        check_bool "outer keeps its own work plus the nested solve" true
          (outer.visited >= 7 + inner.automata.visited));
    test "back-to-back reports count only their own work" (fun () ->
        let g = Dprle.Depgraph.of_system fig1 in
        let _, r1 = Result.get_ok (Dprle.Report.solve_with_report g) in
        let _, r2 = Result.get_ok (Dprle.Report.solve_with_report g) in
        check_int "identical solves, identical counts" r1.automata.visited
          r2.automata.visited;
        check_bool "counts are per-solve, not cumulative" true
          (r2.automata.visited < 2 * r1.automata.visited));
    test "absolute counters never decrease" (fun () ->
        let before = Stats.absolute () in
        let _ =
          Dprle.Solver.run_graph Dprle.Solver.Config.default
            (Dprle.Depgraph.of_system fig1)
        in
        let after = Stats.absolute () in
        let d = Stats.diff after before in
        check_bool "visited grew" true (d.visited > 0);
        check_bool "products grew" true (d.products > 0);
        check_bool "concats grew" true (d.concats > 0));
  ]

let suite =
  [
    ("telemetry:span", span_tests);
    ("telemetry:metrics", metrics_tests);
    ("telemetry:timer", timer_tests);
    ("telemetry:stats", stats_tests);
  ]
