open Helpers
module Ast = Webapp.Ast
module Lang_parser = Webapp.Lang_parser
module Eval = Webapp.Eval
module Symexec = Webapp.Symexec
module Attack = Webapp.Attack
module Nfa = Automata.Nfa

(* The paper's Fig. 1 program, in mini-PHP. *)
let utopia_source =
  {|
// Utopia News Pro fragment (Fig. 1 of the paper)
$newsid = input("posted_newsid");
if (!preg_match(/[\d]+$/, $newsid)) {
  echo "Invalid article news ID.";
  exit;
}
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
|}

let utopia = Lang_parser.parse_exn utopia_source

let fixed_utopia =
  Lang_parser.parse_exn
    (String.concat ""
       [
         {|$newsid = input("posted_newsid");
           if (!preg_match(/^[\d]+$/, $newsid)) { exit; }
           $newsid = "nid_" . $newsid;
           query("SELECT * FROM news WHERE newsid=" . $newsid);|};
       ])

let parser_tests =
  [
    test "parses the Fig. 1 program" (fun () ->
        check_int "statements" 4 (List.length utopia);
        Alcotest.(check (list string)) "inputs" [ "posted_newsid" ] (Ast.inputs utopia));
    test "source round trip" (fun () ->
        let printed = Ast.to_source utopia in
        let reparsed = Lang_parser.parse_exn printed in
        check_bool "same program" true (reparsed = utopia));
    test "basic block count" (fun () ->
        (* entry + (then-arm + join) for the one if *)
        check_int "blocks" 3 (Ast.basic_blocks utopia));
    test "loc counts printed lines" (fun () ->
        check_bool "positive" true (Ast.loc utopia > 4));
    test "parse errors" (fun () ->
        List.iter
          (fun src ->
            match Lang_parser.parse src with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected parse error: %s" src)
          [
            "$x = ;"; "query(; )"; "if ($x) exit;"; "$x == \"y\";";
            "foo();"; "$x = input(name);"; "if (preg_match(/a/ $x)) {}";
          ]);
    test "if/else parse" (fun () ->
        let p = Lang_parser.parse_exn {|if ($x == "a") { exit; } else { echo "b"; }|} in
        match p with
        | [ Ast.If (_, [ Ast.Exit ], [ Ast.Echo _ ]) ] -> ()
        | _ -> Alcotest.fail "unexpected shape");
  ]

let eval_tests =
  [
    test "benign input passes filter and queries" (fun () ->
        let r = Eval.run utopia ~inputs:[ ("posted_newsid", "42") ] in
        check_bool "not exited" false r.exited;
        match r.events with
        | [ Eval.Queried q ] ->
            check_string "query" "SELECT * FROM news WHERE newsid=nid_42" q
        | _ -> Alcotest.fail "expected exactly one query");
    test "obvious attack is stopped by the filter" (fun () ->
        let r = Eval.run utopia ~inputs:[ ("posted_newsid", "' OR 1=1 --") ] in
        check_bool "exited" true r.exited;
        check_int "no query" 0
          (List.length (Eval.queries utopia ~inputs:[ ("posted_newsid", "' OR 1=1 --") ])));
    test "the paper's exploit slips through" (fun () ->
        let inputs = [ ("posted_newsid", "' OR 1=1 ; DROP news --9") ] in
        check_bool "vulnerable" true
          (Eval.vulnerable_run ~attack:Attack.contains_quote utopia ~inputs));
    test "missing input defaults to empty string" (fun () ->
        let r = Eval.run utopia ~inputs:[] in
        check_bool "exited (empty fails filter)" true r.exited);
    test "unassigned variable is an error" (fun () ->
        let p = Lang_parser.parse_exn "echo $nope;" in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Webapp.Eval: unassigned variable $nope") (fun () ->
            ignore (Eval.run p ~inputs:[])));
  ]

let attack_tests =
  [
    test "quote language" (fun () ->
        check_bool "quote" true (Nfa.accepts Attack.contains_quote "a'b");
        check_bool "clean" false (Nfa.accepts Attack.contains_quote "ab"));
    test "tautology" (fun () ->
        check_bool "classic" true (Nfa.accepts Attack.tautology "x' OR 1=1 y");
        check_bool "benign" false (Nfa.accepts Attack.tautology "x=1"));
    test "stacked drop" (fun () ->
        check_bool "drop" true (Nfa.accepts Attack.stacked_drop "x; DROP tbl");
        check_bool "benign" false (Nfa.accepts Attack.stacked_drop "x drop"));
    test "registry" (fun () ->
        check_bool "quote known" true (Attack.lookup "quote" <> None);
        check_bool "unknown" true (Attack.lookup "nope" = None);
        check_int "count" 6 (List.length Attack.names));
  ]

let symexec_tests =
  [
    test "vulnerable program yields a solvable candidate" (fun () ->
        let candidates =
          (Symexec.analyze ~attack:Attack.contains_quote utopia)
            .Symexec.candidates
        in
        check_int "one sink-reaching path" 1 (List.length candidates);
        let q = List.hd candidates in
        Alcotest.(check (list string)) "vars" [ "posted_newsid" ] q.input_vars;
        match (Symexec.solve q).assignment with
        | None -> Alcotest.fail "expected exploit language"
        | Some a ->
            let lang = Dprle.Assignment.find a "posted_newsid" in
            check_bool "attack in language" true
              (Nfa.accepts lang "' OR 1=1 ; DROP news --9");
            check_bool "benign not in language" false (Nfa.accepts lang "7"));
    test "fixed program yields no exploit" (fun () ->
        check_bool "safe" true
          (Symexec.first_exploit ~attack:Attack.contains_quote fixed_utopia = None));
    test "end to end: generated exploit works in the interpreter" (fun () ->
        match Symexec.first_exploit ~attack:Attack.contains_quote utopia with
        | None -> Alcotest.fail "expected exploit"
        | Some inputs ->
            check_bool "exploit fires" true
              (Eval.vulnerable_run ~attack:Attack.contains_quote utopia ~inputs));
    test "constraint count counts depgraph edges" (fun () ->
        (* filter ⊆-edge + sink ⊆-edge + one ∘-pair: the adjacent
           literals "SELECT …=" and "nid_" merge into one constant
           during symbolic evaluation *)
        let q =
          List.hd
            (Symexec.analyze ~attack:Attack.contains_quote utopia)
              .Symexec.candidates
        in
        check_int "c" 3 q.constraint_count);
    test "constant branches are folded, input branches fork" (fun () ->
        let p =
          Lang_parser.parse_exn
            {|$mode = "a";
              if ($mode == "a") { echo "x"; } else { echo "y"; }
              if (input("u") == "q") { query("'" . input("u")); }
              query("safe");|}
        in
        let candidates =
          (Symexec.analyze ~attack:Attack.contains_quote p).Symexec.candidates
        in
        (* sinks: quoted query on the taken branch; "safe" sink on both
           forks of the input branch *)
        check_int "three candidates" 3 (List.length candidates));
    test "multiple sinks on one path get separate candidates" (fun () ->
        let p =
          Lang_parser.parse_exn
            {|query("a" . input("x")); query("b" . input("y"));|}
        in
        let candidates =
          (Symexec.analyze ~attack:Attack.contains_quote p).Symexec.candidates
        in
        check_int "two" 2 (List.length candidates);
        Alcotest.(check (list int))
          "sink indices" [ 0; 1 ]
          (List.map (fun q -> q.Symexec.sink_index) candidates));
    test "infeasible constant path solves unsat" (fun () ->
        let p =
          Lang_parser.parse_exn
            {|if (input("x") == "benign") { query("'" . input("x")); }|}
        in
        (* the path constrains x = "benign", whose query "'benign" does
           contain a quote — so this IS exploitable *)
        match Symexec.first_exploit ~attack:Attack.contains_quote p with
        | Some [ ("x", "benign") ] -> ()
        | Some other ->
            Alcotest.failf "unexpected inputs: %s"
              (String.concat "," (List.map fst other))
        | None -> Alcotest.fail "expected exploit");
    test "conflicting filters are unsat" (fun () ->
        let p =
          Lang_parser.parse_exn
            {|$x = input("x");
              if (!preg_match(/^[a-z]+$/, $x)) { exit; }
              if (!preg_match(/^[0-9]+$/, $x)) { exit; }
              query("SELECT " . $x);|}
        in
        check_bool "no exploit" true
          (Symexec.first_exploit ~attack:Attack.contains_quote p = None));
    test "unconstrained extra input defaults to a" (fun () ->
        let p =
          Lang_parser.parse_exn
            {|$u = input("userid");
              query("SELECT " . input("newsid"));
              echo $u;|}
        in
        match Symexec.first_exploit ~attack:Attack.contains_quote p with
        | Some inputs ->
            check_bool "userid defaulted" true (List.assoc "userid" inputs = "a")
        | None -> Alcotest.fail "expected exploit");
  ]

let symexec_props =
  (* random loop-free programs over a small statement vocabulary *)
  let program_gen =
    let open QCheck2.Gen in
    let input_names = [ "a"; "b" ] in
    let patterns = [ "/^[0-9]+$/"; "/[0-9]$/"; "/^[a-z]*$/" ] in
    let expr_gen =
      let* name = oneofl input_names in
      let* lit = oneofl [ "q="; "'"; "x" ] in
      oneofl
        [
          Ast.Input name;
          Ast.Concat (Ast.Str lit, Ast.Input name);
          Ast.Str lit;
        ]
    in
    let stmt_gen =
      let* pat = oneofl patterns in
      let* name = oneofl input_names in
      let* e = expr_gen in
      oneofl
        [
          Ast.If
            ( Ast.Not (Ast.Preg_match (Regex.Parser.parse_pattern_exn pat, Ast.Input name)),
              [ Ast.Exit ],
              [] );
          Ast.Query e;
          Ast.Echo e;
          Ast.Assign ("t", e);
        ]
    in
    list_size (int_range 1 6) stmt_gen
  in
  [
    qtest ~count:40 "every generated exploit fires concretely" program_gen
      (fun program ->
        match
          Symexec.first_exploit ~attack:Attack.contains_quote program
        with
        | None -> true (* nothing claimed, nothing to check *)
        | Some inputs ->
            Eval.vulnerable_run ~attack:Attack.contains_quote program ~inputs);
    qtest ~count:40 "symbolic path constraints agree with concrete runs"
      program_gen
      (fun program ->
        (* solve every candidate; its witness inputs must drive a real
           run that issues an attack query *)
        let candidates =
          (Symexec.analyze ~attack:Attack.contains_quote program)
            .Symexec.candidates
        in
        List.for_all
          (fun q ->
            match (Symexec.solve q).assignment with
            | None -> true
            | Some a ->
                let constrained = Symexec.exploit_inputs q a in
                let defaults =
                  List.filter_map
                    (fun i ->
                      if List.mem_assoc i constrained then None else Some (i, "a"))
                    (Ast.inputs program)
                in
                Eval.vulnerable_run ~attack:Attack.contains_quote program
                  ~inputs:(constrained @ defaults))
          candidates);
  ]

let suite =
  [
    ("webapp:parser", parser_tests);
    ("webapp:eval", eval_tests);
    ("webapp:attack", attack_tests);
    ("webapp:symexec", symexec_tests);
    ("webapp:props", symexec_props);
  ]
