open Helpers
module Nfa = Automata.Nfa
module Witness = Automata.Witness

let re = Dprle.System.const_of_regex

let unit_tests =
  [
    test "enumerate shortest first" (fun () ->
        Alcotest.(check (list string))
          "a*" [ ""; "a"; "aa"; "aaa" ]
          (Witness.take 4 (re "a*")));
    test "enumerate finite language terminates" (fun () ->
        Alcotest.(check (list string))
          "all of a{0,2}"
          [ ""; "a"; "aa" ]
          (List.of_seq (Witness.enumerate (re "a{0,2}"))));
    test "enumerate empty language is empty" (fun () ->
        Alcotest.(check (list string))
          "empty" []
          (List.of_seq (Witness.enumerate Nfa.empty_lang)));
    test "enumerate samples one representative per class" (fun () ->
        (* [a-z] is one edge: one witness, not 26 *)
        check_int "one" 1 (List.length (List.of_seq (Witness.enumerate (re "[a-z]")))));
    test "exhaustive spells out the alphabet" (fun () ->
        let words =
          List.of_seq (Witness.exhaustive ~alphabet:(Charset.of_string "ab") (re "[a-z]"))
        in
        Alcotest.(check (list string)) "a,b" [ "a"; "b" ] (List.sort compare words));
    test "exhaustive on infinite language is productive" (fun () ->
        let words =
          List.of_seq
            (Seq.take 7 (Witness.exhaustive ~alphabet:(Charset.of_string "ab") (re "(a|b)*")))
        in
        check_int "seven" 7 (List.length words);
        Alcotest.(check (list string))
          "bfs order" [ ""; "a"; "b"; "aa"; "ab"; "ba"; "bb" ] words);
    test "forcing a stream twice does no new automaton work" (fun () ->
        (* regression: enumeration used to rebuild (and re-minimize)
           its DFA on every re-evaluation of the Seq; now the DFA is
           memoized behind the store handle and the stream itself is
           memoized. The machine must differ from the alphabet star:
           h ∩ h is an identity the store answers without any product
           work, which would zero the first-force baseline. *)
        let m = re "(a|b)*a" in
        Automata.Store.clear ();
        let s0 = Automata.Stats.absolute () in
        let seq = Witness.exhaustive ~alphabet:(Charset.of_string "ab") m in
        let w1 = List.of_seq (Seq.take 5 seq) in
        let s1 = Automata.Stats.absolute () in
        let first = Automata.Stats.diff s1 s0 in
        check_bool "first force does the work" true (first.visited > 0);
        let w2 = List.of_seq (Seq.take 5 seq) in
        let s2 = Automata.Stats.absolute () in
        let second = Automata.Stats.diff s2 s1 in
        check_int "second force visits nothing" 0 second.visited;
        Alcotest.(check (list string)) "same words" w1 w2);
    test "dead branches do not stall the sequence" (fun () ->
        (* a machine with a non-accepting cycle off the main path *)
        let b = Nfa.Builder.create () in
        let s = Nfa.Builder.add_state b in
        let f = Nfa.Builder.add_state b in
        let dead = Nfa.Builder.add_state b in
        Nfa.Builder.add_trans b s (Charset.singleton 'x') f;
        Nfa.Builder.add_trans b s (Charset.singleton 'y') dead;
        Nfa.Builder.add_trans b dead (Charset.singleton 'y') dead;
        let m = Nfa.Builder.finish b ~start:s ~final:f in
        Alcotest.(check (list string))
          "just x" [ "x" ]
          (List.of_seq (Witness.enumerate m)));
  ]

let prop_tests =
  [
    qtest ~count:80 "every enumerated witness is accepted" Helpers.nfa_gen
      (fun m -> List.for_all (Nfa.accepts m) (Witness.take 10 m));
    qtest ~count:80 "enumeration is nondecreasing in length" Helpers.nfa_gen
      (fun m ->
        let words = Witness.take 10 m in
        let lengths = List.map String.length words in
        List.sort compare lengths = lengths);
    qtest ~count:80 "enumeration has no duplicates" Helpers.nfa_gen (fun m ->
        let words = Witness.take 12 m in
        List.length (List.sort_uniq compare words) = List.length words);
    qtest ~count:50 "exhaustive agrees with membership on short words"
      Helpers.nfa_gen
      (fun m ->
        let alphabet = Charset.of_string "ab" in
        let enumerated =
          List.of_seq
            (Seq.take_while
               (fun w -> String.length w <= 3)
               (Witness.exhaustive ~alphabet m))
        in
        (* every word over {a,b} of length ≤ 3 accepted by m must
           appear, and vice versa *)
        let all_short =
          let rec gen len =
            if len = 0 then [ "" ]
            else
              List.concat_map
                (fun w -> [ w ^ "a"; w ^ "b" ])
                (gen (len - 1))
          in
          List.concat_map gen [ 0; 1; 2; 3 ]
        in
        List.for_all
          (fun w ->
            Nfa.accepts m w = List.mem w enumerated)
          all_short);
  ]

let suite = [ ("witness:unit", unit_tests); ("witness:props", prop_tests) ]
