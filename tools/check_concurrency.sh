#!/bin/sh
# Concurrency lint: no top-level mutable state in the libraries that
# run under worker domains.
#
# lib/engine fans jobs out over Domain.spawn; lib/serve dispatches
# wire requests onto that pool; lib/telemetry is called from every
# domain on every timer tick. A top-level `ref` or bare mutable
# container in any of them is shared across domains without
# synchronization — a data race under the OCaml 5 memory model, even
# when today's call pattern happens to be single-threaded.
#
# Allowed on the same binding: Atomic.* (racy reads become ordered),
# Mutex.* (guarded), Domain.DLS.* (domain-local by construction).
# Anything else fails the build. Genuinely single-domain state
# belongs in a function body, behind Domain.DLS, or in a library
# outside the gated set.

set -eu

root=${1:-.}
gated="lib/engine lib/serve lib/telemetry"
status=0

for dir in $gated; do
  [ -d "$root/$dir" ] || continue
  for f in "$root/$dir"/*.ml; do
    [ -e "$f" ] || continue
    # Top-level `let` bindings that create mutable state on the same
    # line; indented (local) bindings are fine — locals escape only
    # through closures, which the per-module review covers.
    # A binding with parameters (`let f () = Hashtbl.create ...`) is a
    # function — fresh state per call — so only a bare name (with an
    # optional type annotation) before `=` counts.
    matches=$(grep -nE "^let [a-z_][a-zA-Z0-9_']*( *: *[^=]+)? = *(ref |Hashtbl\.create|Queue\.create|Buffer\.create|Stack\.create)" "$f" \
      | grep -vE 'Atomic\.|Mutex\.|Domain\.DLS' || true)
    if [ -n "$matches" ]; then
      echo "$f: top-level mutable state in a domain-shared library:" >&2
      echo "$matches" | sed 's/^/  /' >&2
      echo "  (wrap it in Atomic/Mutex/Domain.DLS or move it out of the gated set)" >&2
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_concurrency: no unsynchronized top-level mutable state in: $gated"
fi
exit $status
